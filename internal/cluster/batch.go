package cluster

// Batched cluster routing: one client batch is split by ring owner
// into per-group sub-batches that run concurrently, each applied
// through the group's replication policy (quorum fan-out for writes,
// fastest-first failover for reads), and reassembled into the caller's
// op order. Outcomes are per-op throughout — a batch never fails as a
// unit once it reaches the routing layer.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"precursor/internal/audit"
	"precursor/internal/core"
	"precursor/internal/heat"
	"precursor/internal/obs"
)

// BatchBackend is the optional batching capability of a Backend:
// backends that can ship several operations in one frame (core.Client,
// the root package's Pool) implement it, and the cluster client uses
// it to preserve batching end-to-end. Backends without it are driven
// op by op.
type BatchBackend interface {
	// Batch executes ops in order and returns per-op results; the error
	// is batch-level (transport, timeout). See core.Client.Batch.
	Batch(ops []core.BatchOp) ([]core.BatchResult, error)
}

// DeadlineBatchBackend is the optional deadline-propagating batching
// capability: backends that can bound a batch frame by a caller
// deadline (core.Client, the root package's Pool) implement it, so a
// parent batch's remaining budget follows its sub-ops down to the
// wire instead of each hop re-starting a full Timeout.
type DeadlineBatchBackend interface {
	// BatchDeadline is Batch bounded by an absolute deadline (zero =
	// none). See core.Client.BatchDeadline.
	BatchDeadline(ops []core.BatchOp, deadline time.Time) ([]core.BatchResult, error)
}

// TracedBatchBackend is the optional trace-propagating batching
// capability (the batch analogue of TracedBackend): the cluster-level
// batch span's ref rides down so each per-group sub-batch frame — and
// the server span applying it — stitches under one end-to-end trace.
type TracedBatchBackend interface {
	// BatchDeadlineTraced is BatchDeadline continuing the given trace
	// (zero deadline = none). See core.Client.BatchDeadlineTraced.
	BatchDeadlineTraced(ref obs.SpanRef, ops []core.BatchOp, deadline time.Time) ([]core.BatchResult, error)
}

// minBatchSlice is the minimum remaining parent budget worth fanning a
// sub-batch out for: below this, every op is resolved ErrTimeout
// locally — doomed work never reaches a replica.
const minBatchSlice = time.Millisecond

// backendBatch runs ops against one backend, using its native batch
// support when available and falling back to per-op calls otherwise.
// A non-zero deadline is propagated when the backend supports it, and a
// valid ref when the backend can carry trace context (correlation is
// never a reason to fail: backends without the capability just run the
// plain path).
func backendBatch(b Backend, ref obs.SpanRef, ops []core.BatchOp, deadline time.Time) ([]core.BatchResult, error) {
	if ref.Valid() {
		if tb, ok := b.(TracedBatchBackend); ok {
			return tb.BatchDeadlineTraced(ref, ops, deadline)
		}
	}
	if !deadline.IsZero() {
		if db, ok := b.(DeadlineBatchBackend); ok {
			return db.BatchDeadline(ops, deadline)
		}
	}
	if bb, ok := b.(BatchBackend); ok {
		return bb.Batch(ops)
	}
	results := make([]core.BatchResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case core.BatchPut:
			results[i].Err = backendPut(b, ref, op.Key, op.Value)
		case core.BatchGet:
			results[i].Value, results[i].Err = backendGet(b, ref, op.Key)
		case core.BatchDelete:
			results[i].Err = backendDelete(b, ref, op.Key)
		default:
			results[i].Err = fmt.Errorf("precursor/cluster: invalid batch op kind %d", op.Kind)
		}
	}
	return results, nil
}

// Batch routes ops to their owning replica groups and executes each
// group's sub-batch concurrently, returning per-op results in the
// caller's op order. The returned error is nil unless the client is
// closed or ops is empty of routable work — every other failure lands
// in its op's BatchResult (with core.ErrUnconfirmed joined for writes
// whose fate is unknown, exactly like the single-op path).
func (c *Client) Batch(ops []core.BatchOp) ([]core.BatchResult, error) {
	return c.BatchDeadline(ops, time.Time{})
}

// BatchDeadline is Batch under a caller-supplied absolute deadline
// (zero = none). The deadline propagates through every sub-batch: a
// parent with less than minBatchSlice of budget left does not fan out
// at all — every routable op resolves to core.ErrTimeout locally, and
// since nothing was sent, ErrUnconfirmed never joins. Mid-batch, a
// spent deadline stops read failover to further replicas, and
// deadline-capable backends bound their frames by the remaining
// budget.
func (c *Client) BatchDeadline(ops []core.BatchOp, deadline time.Time) ([]core.BatchResult, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if len(ops) == 0 {
		return nil, nil
	}
	results := make([]core.BatchResult, len(ops))
	if c.opts.Heat != nil {
		c.opts.Heat.RecordBatch(len(ops))
		for i := range ops {
			c.opts.Heat.Record(batchHeatKind(ops[i].Kind),
				heat.HashKey(ops[i].Key), len(ops[i].Value), 0)
		}
	}
	// Split by owning group, remembering each op's original index so
	// reassembly preserves order across groups.
	type subBatch struct {
		g   *groupState
		ops []core.BatchOp
		idx []int
	}
	subs := make(map[string]*subBatch)
	var order []string
	for i, op := range ops {
		name := c.ring.Lookup(op.Key)
		g := c.groups[name]
		if g == nil {
			results[i].Err = ErrNoShards
			continue
		}
		sb := subs[name]
		if sb == nil {
			sb = &subBatch{g: g}
			subs[name] = sb
			order = append(order, name)
		}
		sb.ops = append(sb.ops, op)
		sb.idx = append(sb.idx, i)
	}
	if !deadline.IsZero() && time.Until(deadline) < minBatchSlice {
		// The parent deadline is (nearly) spent: resolve every routable
		// op with a clean timeout instead of fanning doomed work out to
		// the replicas. Nothing was sent, so ErrUnconfirmed never joins.
		for _, name := range order {
			for _, pi := range subs[name].idx {
				results[pi].Err = core.ErrTimeout
			}
		}
		return results, nil
	}
	// One umbrella op covers the whole client batch, so a frame that
	// fans out to several groups still stitches into a single trace:
	// each group's sub-batch op adopts this ref as its parent.
	op := c.opts.Tracer.Start(int(c.traceSlot.Add(1)), "batch")
	pref := op.Ref()
	var wg sync.WaitGroup
	for _, name := range order {
		sb := subs[name]
		wg.Add(1)
		go func(sb *subBatch) {
			defer wg.Done()
			var rs []core.BatchResult
			if sb.g.single() {
				rs = c.singleBatch(sb.g.replicas[0], sb.ops, deadline, pref)
			} else {
				rs = c.replicatedBatch(sb.g, sb.ops, deadline, pref)
			}
			// Indices are disjoint across sub-batches, so concurrent
			// writes into results never collide.
			for j := range rs {
				results[sb.idx[j]] = rs[j]
			}
		}(sb)
	}
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			op.SetError(results[i].Err)
			break
		}
	}
	op.Finish()
	if c.opts.Heat != nil {
		var out int
		for i := range results {
			out += len(results[i].Value)
		}
		c.opts.Heat.AddBytesOut(out)
	}
	return results, nil
}

// batchHeatKind maps batch op kinds to heat collector kinds.
func batchHeatKind(k core.BatchOpKind) heat.Kind {
	switch k {
	case core.BatchPut:
		return heat.KindPut
	case core.BatchDelete:
		return heat.KindDelete
	default:
		return heat.KindGet
	}
}

// PutBatch stores values[i] under keys[i], routed and batched per
// owning group.
func (c *Client) PutBatch(keys []string, values [][]byte) ([]core.BatchResult, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("precursor/cluster: %d keys, %d values", len(keys), len(values))
	}
	ops := make([]core.BatchOp, len(keys))
	for i := range keys {
		ops[i] = core.BatchOp{Kind: core.BatchPut, Key: keys[i], Value: values[i]}
	}
	return c.Batch(ops)
}

// GetBatch fetches keys, routed and batched per owning group.
func (c *Client) GetBatch(keys []string) ([]core.BatchResult, error) {
	ops := make([]core.BatchOp, len(keys))
	for i := range keys {
		ops[i] = core.BatchOp{Kind: core.BatchGet, Key: keys[i]}
	}
	return c.Batch(ops)
}

// DeleteBatch removes keys, routed and batched per owning group.
func (c *Client) DeleteBatch(keys []string) ([]core.BatchResult, error) {
	ops := make([]core.BatchOp, len(keys))
	for i := range keys {
		ops[i] = core.BatchOp{Kind: core.BatchDelete, Key: keys[i]}
	}
	return c.Batch(ops)
}

// singleBatch runs a sub-batch against a single-replica group with the
// original breaker semantics: admitted as one operation, the breaker
// fed the worst shard-level outcome.
func (c *Client) singleBatch(rep *replicaState, ops []core.BatchOp, deadline time.Time, pref obs.SpanRef) []core.BatchResult {
	tok, err := c.admitLegacy(rep)
	if err != nil {
		out := make([]core.BatchResult, len(ops))
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	t0 := time.Now()
	results, berr := backendBatch(rep.backend, pref, ops, deadline)
	rep.recordLatency(t0)
	obsErr := berr
	if obsErr == nil {
		for i := range results {
			if results[i].Err != nil && c.opts.IsShardFailure(results[i].Err) {
				obsErr = results[i].Err
				break
			}
		}
	}
	ferr := c.observe(rep, tok, obsErr, false, "")
	if len(results) != len(ops) {
		// Batch-level failure before anything was sent (or a broken
		// backend): every op shares the typed outcome.
		if ferr == nil {
			ferr = berr
		}
		if ferr == nil {
			ferr = &ShardError{Shard: rep.name, Err: ErrShardDown}
		}
		out := make([]core.BatchResult, len(ops))
		for i := range out {
			out[i].Err = ferr
		}
		return out
	}
	c.tallyBatch(rep, ops, results)
	return results
}

// tallyBatch bumps per-replica op counters for the sub-batch's
// successful ops.
func (c *Client) tallyBatch(rep *replicaState, ops []core.BatchOp, results []core.BatchResult) {
	for i := range results {
		if results[i].Err != nil {
			continue
		}
		switch ops[i].Kind {
		case core.BatchPut:
			rep.puts.Add(1)
		case core.BatchGet:
			rep.gets.Add(1)
		case core.BatchDelete:
			rep.deletes.Add(1)
		}
	}
}

// replicatedBatch splits a replicated group's sub-batch into its write
// ops (quorum fan-out across replicas) and read ops (fastest-first
// with failover), which run concurrently. Results keep the sub-batch's
// op order; ordering between a batch's writes and reads of the same
// key is not defined in a replicated group (they race like two
// independent clients would).
func (c *Client) replicatedBatch(g *groupState, ops []core.BatchOp, deadline time.Time, pref obs.SpanRef) []core.BatchResult {
	out := make([]core.BatchResult, len(ops))
	var wOps, rOps []core.BatchOp
	var wIdx, rIdx []int
	for i, op := range ops {
		if op.Kind == core.BatchGet {
			rOps = append(rOps, op)
			rIdx = append(rIdx, i)
		} else {
			wOps = append(wOps, op)
			wIdx = append(wIdx, i)
		}
	}
	var wg sync.WaitGroup
	if len(wOps) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := c.quorumWriteBatch(g, wOps, deadline, pref)
			for j := range rs {
				out[wIdx[j]] = rs[j]
			}
		}()
	}
	if len(rOps) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := c.replicatedGetBatch(g, rOps, deadline, pref)
			for j := range rs {
				out[rIdx[j]] = rs[j]
			}
		}()
	}
	wg.Wait()
	return out
}

// journalKeys journals the given write keys on this replica and
// suspends its serving until repair re-syncs them — the batched
// analogue of observe's failed-write journaling.
func (s *replicaState) journalKeys(journalCap int, keys []string) {
	s.mu.Lock()
	s.repairing = true
	for _, k := range keys {
		s.journalLocked(journalCap, k)
	}
	s.mu.Unlock()
}

// admitWriteBatch is admitWrite for a whole write sub-batch: one lock
// acquisition either admits the replica or journals every key for
// repair.
func (s *replicaState) admitWriteBatch(journalCap int, ops []core.BatchOp) (admitToken, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down && !s.repairing {
		return admitToken{epoch: s.epoch}, true
	}
	for i := range ops {
		s.journalLocked(journalCap, ops[i].Key)
	}
	s.missed.Add(uint64(len(ops)))
	return admitToken{}, false
}

// quorumWriteBatch fans a write sub-batch out to every live replica
// and counts acks per op: an op succeeds when it reaches the group's
// quorum, independently of its batch-mates. Unlike the single-op
// quorumWrite it waits for every replica (per-op accounting needs the
// full tally); the batch already amortizes the latency. Failed or
// ambiguous ops journal their keys on the replicas that missed them.
func (c *Client) quorumWriteBatch(g *groupState, ops []core.BatchOp, deadline time.Time, pref obs.SpanRef) []core.BatchResult {
	out := make([]core.BatchResult, len(ops))
	live := make([]*replicaState, 0, len(g.replicas))
	toks := make([]admitToken, 0, len(g.replicas))
	for _, rep := range g.replicas {
		if tok, ok := rep.admitWriteBatch(c.opts.JournalCap, ops); ok {
			live = append(live, rep)
			toks = append(toks, tok)
		}
	}
	if len(live) == 0 {
		c.noteQuorumShortfall(g, 0, "no live replicas (batch)")
		err := &ShardError{Shard: g.name, Err: ErrShardDown}
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	op := c.opts.Tracer.Start(int(c.traceSlot.Add(1)), "batch")
	op.SetGroup(g.name)
	op.AdoptRef(pref)
	ref := op.Ref() // every replica's sub-batch stitches under this op
	defer op.Finish()

	type repRes struct {
		rep        *replicaState
		results    []core.BatchResult
		err        error
		start, end int64
	}
	ch := make(chan repRes, len(live))
	for i, rep := range live {
		go func(rep *replicaState, tok admitToken) {
			s0 := op.Now()
			t0 := time.Now()
			results, berr := backendBatch(rep.backend, ref, ops, deadline)
			d := time.Since(t0)
			rep.recordLatency(t0)
			rep.noteLatency(d)
			obsErr := berr
			if obsErr == nil {
				for j := range results {
					rerr := results[j].Err
					if rerr != nil && (c.opts.IsShardFailure(rerr) || errors.Is(rerr, core.ErrUnconfirmed)) {
						obsErr = rerr
						break
					}
				}
			}
			_ = c.observe(rep, tok, obsErr, true, "")
			ch <- repRes{rep: rep, results: results, err: berr, start: s0, end: op.Now()}
		}(rep, toks[i])
	}

	acks := make([]int, len(ops))
	notFounds := make([]int, len(ops))
	maybeApplied := make([]bool, len(ops))
	firstData := make([]error, len(ops))
	for range live {
		r := <-ch
		op.ReplicaSpanAt(r.rep.name, r.start, r.end)
		if len(r.results) != len(ops) {
			// Whole-replica batch failure: every key must be re-synced to
			// this replica; the frame may have landed if the error says so.
			keys := make([]string, len(ops))
			for j := range ops {
				keys[j] = ops[j].Key
			}
			r.rep.journalKeys(c.opts.JournalCap, keys)
			if errors.Is(r.err, core.ErrUnconfirmed) {
				for j := range maybeApplied {
					maybeApplied[j] = true
				}
			}
			continue
		}
		c.tallyBatch(r.rep, ops, r.results)
		for j := range r.results {
			rerr := r.results[j].Err
			switch {
			case rerr == nil:
				acks[j]++
			case ops[j].Kind == core.BatchDelete && errors.Is(rerr, core.ErrNotFound):
				// Absence is a delete's desired end state.
				acks[j]++
				notFounds[j]++
			case errors.Is(rerr, core.ErrUnconfirmed):
				maybeApplied[j] = true
				r.rep.journalKeys(c.opts.JournalCap, []string{ops[j].Key})
			case c.opts.IsShardFailure(rerr):
				r.rep.journalKeys(c.opts.JournalCap, []string{ops[j].Key})
			default:
				if firstData[j] == nil {
					firstData[j] = rerr
				}
			}
		}
	}

	shortfall := false
	minAcks := -1
	for j := range ops {
		switch {
		case acks[j] >= g.quorum:
			if ops[j].Kind == core.BatchDelete && acks[j] == notFounds[j] {
				out[j].Err = core.ErrNotFound
			}
		case acks[j] == 0 && !maybeApplied[j] && firstData[j] != nil:
			// Deterministic rejection on every replica: a clean data
			// error, nothing was applied.
			out[j].Err = firstData[j]
		default:
			shortfall = true
			if minAcks < 0 || acks[j] < minAcks {
				minAcks = acks[j]
			}
			err := fmt.Errorf("%w (%d/%d acks)", ErrNoQuorum, acks[j], g.quorum)
			if acks[j] > 0 || maybeApplied[j] {
				// Partially applied: indeterminate until repair reconverges.
				err = fmt.Errorf("%w; %w", err, core.ErrUnconfirmed)
			}
			out[j].Err = &ShardError{Shard: g.name, Err: err}
		}
	}
	if shortfall {
		c.noteQuorumShortfall(g, minAcks, "batch write")
	}
	return out
}

// replicatedGetBatch serves a read sub-batch from the fastest healthy
// replica, failing the still-unresolved ops over to the next replica
// on shard-level errors and on payload-MAC failures (the Byzantine
// backstop). Data-level outcomes from a healthy replica — the value or
// an authoritative not-found — resolve an op immediately.
func (c *Client) replicatedGetBatch(g *groupState, ops []core.BatchOp, deadline time.Time, pref obs.SpanRef) []core.BatchResult {
	op := c.opts.Tracer.Start(int(c.traceSlot.Add(1)), "batch")
	op.SetGroup(g.name)
	op.AdoptRef(pref)
	ref := op.Ref()
	defer op.Finish()
	out := make([]core.BatchResult, len(ops))
	order := g.readOrder()
	probeFallback := len(order) == 0
	if probeFallback {
		order = g.replicas
	}
	pending := make([]int, len(ops))
	for i := range pending {
		pending[i] = i
	}
	var lastErr error
	attempted := 0
	for _, rep := range order {
		if len(pending) == 0 {
			break
		}
		if !deadline.IsZero() && time.Until(deadline) < minBatchSlice && attempted > 0 {
			// The parent budget is spent: stop failing over. The pending
			// ops resolve ErrTimeout below (reads — never unconfirmed).
			lastErr = core.ErrTimeout
			break
		}
		var tok admitToken
		var ok bool
		if probeFallback {
			tok, ok = rep.admitProbe()
		} else {
			tok, ok = rep.admitRead()
		}
		if !ok {
			continue
		}
		attempted++
		sub := make([]core.BatchOp, len(pending))
		for j, pi := range pending {
			sub[j] = ops[pi]
		}
		s0 := op.Now()
		t0 := time.Now()
		results, berr := backendBatch(rep.backend, ref, sub, deadline)
		d := time.Since(t0)
		rep.recordLatency(t0)
		obsErr := berr
		if obsErr == nil {
			for j := range results {
				if results[j].Err != nil && c.opts.IsShardFailure(results[j].Err) {
					obsErr = results[j].Err
					break
				}
			}
		}
		ferr := c.observe(rep, tok, obsErr, true, "")
		op.ReplicaSpanAt(rep.name, s0, op.Now())
		if len(results) != len(sub) {
			if ferr != nil {
				lastErr = ferr
			} else if berr != nil {
				lastErr = berr
			}
			continue // whole sub-batch fails over to the next replica
		}
		rep.noteLatency(d)
		resolved := 0
		byzantine := false
		var remaining []int
		for j := range results {
			pi := pending[j]
			rerr := results[j].Err
			switch {
			case rerr == nil:
				out[pi] = results[j]
				rep.gets.Add(1)
				resolved++
			case errors.Is(rerr, core.ErrIntegrity):
				byzantine = true
				remaining = append(remaining, pi)
				lastErr = rerr
			case c.opts.IsShardFailure(rerr):
				remaining = append(remaining, pi)
				lastErr = rerr
			default:
				// Data-level and authoritative (not-found from a healthy
				// replica, malformed-response, …).
				out[pi] = results[j]
				resolved++
			}
		}
		if byzantine {
			c.opts.Audit.Add(audit.Record{Kind: audit.KindByzantineFailover, Actor: rep.name,
				Detail: fmt.Sprintf("group %s: batched read payload MAC failed verification", g.name)})
			c.opts.Tracer.NoteFault(fmt.Sprintf("byzantine failover group=%s replica=%s (batch)", g.name, rep.name))
		}
		if resolved > 0 && attempted > 1 {
			c.failovers.Add(1)
			c.opts.Audit.Add(audit.Record{Kind: audit.KindReadFailover, Actor: rep.name,
				Detail: fmt.Sprintf("group %s: %d batched reads served by attempt %d", g.name, resolved, attempted)})
		}
		pending = remaining
	}
	for _, pi := range pending {
		switch {
		case attempted == 0:
			out[pi].Err = &ShardError{Shard: g.name, Err: ErrShardDown}
		case lastErr != nil:
			out[pi].Err = lastErr
		default:
			out[pi].Err = &ShardError{Shard: g.name, Err: ErrShardDown}
		}
	}
	return out
}
