package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"precursor/internal/audit"
	"precursor/internal/core"
	"precursor/internal/heat"
	"precursor/internal/hist"
	"precursor/internal/obs"
	"precursor/internal/overload"
)

// Backend is one shard's key-value connection. *core.Client satisfies it,
// as does the root package's *precursor.Pool (the usual choice, so many
// goroutines can drive the cluster client concurrently).
type Backend interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Close() error
}

// TracedBackend is the optional trace-propagating capability of a
// Backend: backends that can carry a caller's trace context to the
// server inside the sealed control data (core.Client, the root
// package's Pool) implement it, and the cluster client uses it so the
// cluster-level span — quorum write, hedged read, failover walk —
// becomes the parent of every per-shard span it fans out to, across
// process boundaries. Backends without it are driven through the plain
// methods; correlation stops at this hop, nothing else changes.
type TracedBackend interface {
	// PutTraced is Put continuing the given trace (see core.Client.PutTraced).
	PutTraced(ref obs.SpanRef, key string, value []byte) error
	// GetTraced is Get continuing the given trace.
	GetTraced(ref obs.SpanRef, key string) ([]byte, error)
	// DeleteTraced is Delete continuing the given trace.
	DeleteTraced(ref obs.SpanRef, key string) error
}

// backendPut routes one put through the backend's traced variant when
// it has one and the caller has a live trace, and the plain method
// otherwise.
func backendPut(b Backend, ref obs.SpanRef, key string, value []byte) error {
	if tb, ok := b.(TracedBackend); ok && ref.Valid() {
		return tb.PutTraced(ref, key, value)
	}
	return b.Put(key, value)
}

// backendGet is backendPut's read analogue.
func backendGet(b Backend, ref obs.SpanRef, key string) ([]byte, error) {
	if tb, ok := b.(TracedBackend); ok && ref.Valid() {
		return tb.GetTraced(ref, key)
	}
	return b.Get(key)
}

// backendDelete is backendPut's delete analogue.
func backendDelete(b Backend, ref obs.SpanRef, key string) error {
	if tb, ok := b.(TracedBackend); ok && ref.Valid() {
		return tb.DeleteTraced(ref, key)
	}
	return b.Delete(key)
}

// Shard names one cluster member and its connection.
type Shard struct {
	// Name identifies the shard on the ring. Placement depends only on
	// the set of names, so every client must use the same ones (the root
	// package uses the shard's listen address).
	Name    string
	Backend Backend
}

// ReplicaGroup is one ring position backed by R replicas. Every replica
// stores the group's full key range; the client fans writes out to all of
// them and reads from the fastest healthy one. Group names take the ring
// position (placement depends only on the set of group names); replica
// names identify the individual servers for health, stats and repair.
type ReplicaGroup struct {
	// Name is the group's ring identity. Every client must derive the
	// same name for the same membership (the root package joins the
	// sorted replica addresses).
	Name string
	// Replicas are the group members, each an independently attested
	// single-node server.
	Replicas []Shard
}

// Options tunes a cluster Client.
type Options struct {
	// VirtualNodes per shard on the ring (DefaultVirtualNodes if <= 0).
	VirtualNodes int
	// RetryBackoff is the base delay before a failed shard is probed
	// again (default 250ms). The delay doubles per consecutive failure up
	// to MaxBackoff (default 8s).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// IsShardFailure classifies an operation error as a shard outage
	// (trips the breaker) rather than a data-level error like not-found.
	// Default: core.ErrClosed or core.ErrTimeout.
	IsShardFailure func(error) bool
	// WriteQuorum is the number of replica acks a write needs in a
	// replicated group (0 = majority). Clamped to each group's size.
	WriteQuorum int
	// OpenRepair opens an anti-entropy repair session against the named
	// replica (the root package dials core.ConnectRepair). Nil restricts
	// repair to journal replay: a replica that lost state entirely
	// cannot rejoin without a snapshot source.
	OpenRepair func(replica string) (RepairSession, error)
	// RepairInterval is the cadence of the background probe/repair scan
	// over replicated groups (default 250ms).
	RepairInterval time.Duration
	// JournalCap bounds each replica's missed-write journal (default
	// 4096). Overflow discards the journal and forces a full snapshot
	// sync instead — never a silent gap.
	JournalCap int
	// DisableAutoRepair turns the background probe/repair goroutine off
	// (deterministic tests drive repair via short RepairInterval instead;
	// production leaves this false).
	DisableAutoRepair bool
	// Audit, when set, receives a tamper-evident record of the client's
	// replication safeguards firing: breaker trips, quorum shortfalls,
	// Byzantine read failovers, repair anomalies. Share the servers' log
	// to interleave client- and server-side detections on one chain, or
	// give the client its own. Nil disables (one branch per event).
	Audit *audit.Log
	// Tracer, when set, records replicated operations as traces with
	// per-replica child spans (obs.CliReplica, annotated with the group
	// and replica names) and receives NoteFault annotations on failover
	// and repair events. A SideClient tracer; nil disables.
	Tracer *obs.Tracer
	// Heat, when set, accumulates routing-path workload heat: which
	// hashed keys this client sends where, ring-range load and op
	// rates, mirroring the server-side apply-path collector so client
	// and shard views of skew can be compared. Nil disables (one
	// branch per op).
	Heat *heat.Collector
	// HedgeReads enables budget-guarded read hedging in replicated
	// groups: when the fastest replica has not answered within the hedge
	// delay (a p95 estimate of its smoothed latency, floored at
	// HedgeMinDelay), the read is also issued to the next healthy
	// replica and the first sealed-valid reply wins; the loser's late
	// result is discarded. Every hedge spends a token from Budget, so
	// hedging can never more than marginally amplify read load.
	HedgeReads bool
	// HedgeMinDelay floors the hedge delay (default 1ms) so
	// sub-millisecond latency estimates do not hedge every read.
	HedgeMinDelay time.Duration
	// Budget is the token bucket that admission-control retries and
	// hedged reads spend from; successful operations earn tokens back
	// at overload.DefaultBudgetRatio, bounding total amplification. Nil
	// installs a per-client default bucket.
	Budget *overload.RetryBudget
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.VirtualNodes <= 0 {
		out.VirtualNodes = DefaultVirtualNodes
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 250 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 8 * time.Second
	}
	if out.IsShardFailure == nil {
		out.IsShardFailure = func(err error) bool {
			return errors.Is(err, core.ErrClosed) || errors.Is(err, core.ErrTimeout)
		}
	}
	if out.RepairInterval <= 0 {
		out.RepairInterval = 250 * time.Millisecond
	}
	if out.JournalCap <= 0 {
		out.JournalCap = 4096
	}
	if out.HedgeMinDelay <= 0 {
		out.HedgeMinDelay = time.Millisecond
	}
	if out.Budget == nil {
		out.Budget = overload.NewRetryBudget(0, 0)
	}
	return out
}

// Client routes operations across shards by consistent key hash.
//
// Each ring position is a replica group (size 1 unless built with
// NewReplicated). Within a group every replica has an independent health
// breaker. Single-replica groups keep the original semantics: when the
// one replica's breaker is open, operations fail immediately with a
// ShardError wrapping ErrShardDown until the retry backoff elapses and a
// probe is let through. Replicated groups never fail fast while any
// replica survives: writes fan out to all live replicas and succeed on a
// quorum of acks, reads fail over from the fastest replica to the next,
// and a recovering replica is repaired (snapshot + delta + journal
// replay) before it serves again.
//
// Client is safe for concurrent use when its Backends are (use pools).
type Client struct {
	ring   *Ring
	groups map[string]*groupState   // by group name (ring identity)
	reps   map[string]*replicaState // by replica name
	order  []string                 // group names, ring order
	opts   Options
	closed atomic.Bool
	stopCh chan struct{}
	wg     sync.WaitGroup

	traceSlot atomic.Uint32 // stripes tracer histogram recording

	failovers        atomic.Uint64 // reads served by a non-preferred replica
	quorumShortfalls atomic.Uint64 // writes that missed their quorum
	repairsDone      atomic.Uint64 // completed replica repairs
	repairFailures   atomic.Uint64 // aborted repair attempts
	hedgesLaunched   atomic.Uint64 // secondary reads issued by the hedge timer
	hedgesWon        atomic.Uint64 // hedged reads where the secondary answered first
	hedgesDenied     atomic.Uint64 // hedge attempts refused by the retry budget
}

// groupState is one ring position's replica set.
type groupState struct {
	name     string
	replicas []*replicaState
	quorum   int // write quorum (1 for single-replica groups)
}

func (g *groupState) single() bool { return len(g.replicas) == 1 }

// replicaState is one replica's connection plus health and counters.
//
// The breaker is epoch-based so slow, overlapping operations cannot
// flap it: admit hands each operation a token stamped with the current
// epoch, every state transition bumps the epoch, and a result is only
// allowed to transition the breaker if its token is still current.
// Without this, an operation admitted while the shard was healthy but
// completing after it tripped would close (on success) or deepen (on
// failure) the breaker it knows nothing about.
//
// On top of the breaker, a replica in an R>1 group moves through three
// states: up (serving), down (breaker open), repairing (breaker closed
// again but excluded from reads and live writes until its journal and —
// after state loss — a donor snapshot have been replayed). Writes that
// cannot go to a replica are journaled so repair knows what to re-sync.
type replicaState struct {
	name    string
	backend Backend
	group   *groupState

	puts, gets, deletes atomic.Uint64
	errors              atomic.Uint64
	missed              atomic.Uint64 // writes journaled/skipped while not up (replica lag)
	repairs             atomic.Uint64 // completed repairs of this replica

	// lat records whole-operation latency against this shard as seen by
	// this client (queueing, transport and retries included). latIdx
	// rotates recordings across the sharded histogram's stripes, since
	// many goroutines may drive one shard through a pool.
	lat    *hist.Sharded
	latIdx atomic.Uint32
	// ewma is a smoothed operation latency in nanoseconds, used to order
	// replicated reads fastest-first.
	ewma atomic.Int64

	mu       sync.Mutex
	epoch    uint64 // bumped on every trip/close transition
	down     bool
	failures int       // consecutive shard-level failures
	retryAt  time.Time // next probe admission when down
	probing  bool      // a probe op is in flight

	repairing     bool     // R>1: serving suspended until repair completes
	needsFullSync bool     // repair must adopt a donor snapshot first
	journal       []string // keys written while this replica was not up
	journalDrop   bool     // journal overflowed; forces needsFullSync
	repairBusy    bool     // a repair run is in flight
}

// admitToken records the breaker state an operation was admitted under.
type admitToken struct {
	epoch uint64
	probe bool // this op is the single half-open probe
}

// New builds a cluster client over the given shards, one replica per
// ring position (the original unreplicated layout).
func New(shards []Shard, opts Options) (*Client, error) {
	groups := make([]ReplicaGroup, len(shards))
	for i, s := range shards {
		groups[i] = ReplicaGroup{Name: s.Name, Replicas: []Shard{s}}
	}
	return NewReplicated(groups, opts)
}

// NewReplicated builds a cluster client over replica groups. Group names
// take ring positions; writes to a group fan out to its replicas and
// need opts.WriteQuorum acks (majority by default); reads are served by
// the fastest healthy replica with transparent failover. Unless
// opts.DisableAutoRepair is set, a background goroutine probes downed
// replicas and repairs recovering ones (donor snapshot + delta + journal
// replay) before they rejoin.
func NewReplicated(groups []ReplicaGroup, opts Options) (*Client, error) {
	if len(groups) == 0 {
		return nil, ErrNoShards
	}
	o := opts.withDefaults()
	c := &Client{
		groups: make(map[string]*groupState, len(groups)),
		reps:   make(map[string]*replicaState),
		opts:   o,
		stopCh: make(chan struct{}),
	}
	names := make([]string, len(groups))
	replicated := false
	for i, g := range groups {
		if len(g.Replicas) == 0 {
			return nil, fmt.Errorf("precursor/cluster: group %q has no replicas", g.Name)
		}
		gs := &groupState{name: g.Name}
		for _, r := range g.Replicas {
			if _, dup := c.reps[r.Name]; dup {
				return nil, fmt.Errorf("precursor/cluster: duplicate replica name %q", r.Name)
			}
			rep := &replicaState{name: r.Name, backend: r.Backend, group: gs, lat: hist.NewSharded(0)}
			gs.replicas = append(gs.replicas, rep)
			c.reps[r.Name] = rep
		}
		gs.quorum = quorumFor(len(gs.replicas), o.WriteQuorum)
		if len(gs.replicas) > 1 {
			replicated = true
		}
		if _, dup := c.groups[g.Name]; dup {
			return nil, fmt.Errorf("precursor/cluster: duplicate group name %q", g.Name)
		}
		c.groups[g.Name] = gs
		names[i] = g.Name
	}
	c.ring = NewRing(names, o.VirtualNodes)
	c.order = c.ring.Shards()
	if replicated && !o.DisableAutoRepair {
		c.wg.Add(1)
		go c.repairLoop()
	}
	return c, nil
}

// quorumFor resolves the effective write quorum for a group of size r.
func quorumFor(r, requested int) int {
	w := requested
	if w <= 0 {
		w = r/2 + 1 // majority
	}
	if w > r {
		w = r
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Ring exposes the placement ring (for metrics and tooling).
func (c *Client) Ring() *Ring { return c.ring }

// ShardFor returns the name of the replica group that owns key.
func (c *Client) ShardFor(key string) string { return c.ring.Lookup(key) }

// groupFor resolves the owning replica group, checking liveness.
func (c *Client) groupFor(key string) (*groupState, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	g := c.groups[c.ring.Lookup(key)]
	if g == nil {
		return nil, ErrNoShards
	}
	return g, nil
}

// Put stores value under key on the owning group: directly on a
// single-replica group, quorum-fanned-out on a replicated one.
func (c *Client) Put(key string, value []byte) error {
	g, err := c.groupFor(key)
	if err != nil {
		return err
	}
	c.opts.Heat.Record(heat.KindPut, heat.HashKey(key), len(value), 0)
	if g.single() {
		return c.singleOp(g.replicas[0], func(b Backend) error { return b.Put(key, value) },
			func(r *replicaState) { r.puts.Add(1) })
	}
	return c.quorumWrite(g, key, func(b Backend, ref obs.SpanRef) error {
		return backendPut(b, ref, key, value)
	}, false, func(r *replicaState) { r.puts.Add(1) })
}

// Get fetches and verifies the value for key from the owning group's
// fastest healthy replica, failing over on replica outages and on MAC
// failures (the integrity backstop: a Byzantine replica can corrupt its
// copy, but the client-side MAC catches it and the read moves on).
func (c *Client) Get(key string) ([]byte, error) {
	g, err := c.groupFor(key)
	if err != nil {
		return nil, err
	}
	c.opts.Heat.Record(heat.KindGet, heat.HashKey(key), 0, 0)
	if g.single() {
		rep := g.replicas[0]
		tok, err := c.admitLegacy(rep)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		v, err := rep.backend.Get(key)
		rep.recordLatency(t0)
		if err = c.observe(rep, tok, err, false, ""); err == nil {
			rep.gets.Add(1)
		}
		c.opts.Heat.AddBytesOut(len(v))
		return v, err
	}
	v, err := c.replicatedGet(g, key)
	c.opts.Heat.AddBytesOut(len(v))
	return v, err
}

// Delete removes key from the owning group (quorum-acked when
// replicated; a replica reporting not-found counts as an ack).
func (c *Client) Delete(key string) error {
	g, err := c.groupFor(key)
	if err != nil {
		return err
	}
	c.opts.Heat.Record(heat.KindDelete, heat.HashKey(key), 0, 0)
	if g.single() {
		return c.singleOp(g.replicas[0], func(b Backend) error { return b.Delete(key) },
			func(r *replicaState) { r.deletes.Add(1) })
	}
	return c.quorumWrite(g, key, func(b Backend, ref obs.SpanRef) error {
		return backendDelete(b, ref, key)
	}, true, func(r *replicaState) { r.deletes.Add(1) })
}

// singleOp runs one operation against a single-replica group with the
// original breaker semantics.
func (c *Client) singleOp(rep *replicaState, do func(Backend) error, tally func(*replicaState)) error {
	tok, err := c.admitLegacy(rep)
	if err != nil {
		return err
	}
	t0 := time.Now()
	err = do(rep.backend)
	rep.recordLatency(t0)
	if err = c.observe(rep, tok, err, false, ""); err == nil {
		tally(rep)
	}
	return err
}

// admitLegacy consults a single-replica group's breaker, counting
// fail-fast rejections as errors like the original client did.
func (c *Client) admitLegacy(rep *replicaState) (admitToken, error) {
	tok, err := rep.admit()
	if err != nil {
		rep.errors.Add(1)
		return admitToken{}, err
	}
	return tok, nil
}

// quorumWrite fans a write out to every live replica of g concurrently
// and succeeds once quorum acks arrive. Replicas that are down or
// repairing journal the key instead (repair re-syncs it later — journal
// entries are dirty markers, not acks). Partial application joins
// core.ErrUnconfirmed onto the failure, mirroring the single-node
// write-outcome semantics. do receives the quorum op's own span ref so
// every replica attempt stitches under the one cluster-level trace.
func (c *Client) quorumWrite(g *groupState, key string, do func(Backend, obs.SpanRef) error, isDelete bool, tally func(*replicaState)) error {
	live := make([]*replicaState, 0, len(g.replicas))
	toks := make([]admitToken, 0, len(g.replicas))
	for _, rep := range g.replicas {
		if tok, ok := rep.admitWrite(c.opts.JournalCap, key); ok {
			live = append(live, rep)
			toks = append(toks, tok)
		}
	}
	if len(live) == 0 {
		c.noteQuorumShortfall(g, 0, "no live replicas")
		return &ShardError{Shard: g.name, Err: ErrShardDown}
	}
	kind := "put"
	if isDelete {
		kind = "delete"
	}
	op := c.opts.Tracer.Start(int(c.traceSlot.Add(1)), kind)
	op.SetGroup(g.name)
	// Read before the fan-out launches: Ref's fields are fixed at Start,
	// and the collector goroutine owns every later mutation of op.
	ref := op.Ref()
	// Each fan-out goroutine runs its breaker observation itself and
	// reports into the buffered channel, so stragglers (e.g. an attempt
	// stuck in a dead pool's acquire wait) drain in the background
	// without stalling the caller.
	type repResult struct {
		rep        *replicaState
		err        error
		start, end int64 // obs timebase; 0 when tracing is off
	}
	results := make(chan repResult, len(live))
	for i, rep := range live {
		go func(rep *replicaState, tok admitToken) {
			s0 := op.Now()
			t0 := time.Now()
			err := do(rep.backend, ref)
			d := time.Since(t0)
			rep.recordLatency(t0)
			rep.noteLatency(d)
			if err = c.observe(rep, tok, err, true, key); err == nil {
				tally(rep)
			}
			results <- repResult{rep: rep, err: err, start: s0, end: op.Now()}
		}(rep, toks[i])
	}
	// One collector goroutine owns the trace op (an obs.Op is single-
	// owner): it signals the write's outcome on done the moment quorum is
	// reached — the caller does not wait for stragglers — then keeps
	// draining so every replica's share of the fan-out lands as a
	// CliReplica child span before Finish.
	done := make(chan error, 1)
	go func() {
		var acks, notFounds int
		var firstFail, firstData error
		resolved := false
		resolve := func(err error) {
			if !resolved {
				resolved = true
				op.SetError(err)
				done <- err
			}
		}
		for range live {
			r := <-results
			op.ReplicaSpanAt(r.rep.name, r.start, r.end)
			switch {
			case r.err == nil:
				acks++
			case isDelete && errors.Is(r.err, core.ErrNotFound):
				// The replica never had the key — for a delete that is the
				// desired end state, so it counts toward the quorum.
				acks++
				notFounds++
			case c.opts.IsShardFailure(r.err) || errors.Is(r.err, core.ErrUnconfirmed):
				if firstFail == nil {
					firstFail = r.err
				}
			default:
				if firstData == nil {
					firstData = r.err
				}
			}
			if !resolved && acks >= g.quorum {
				if isDelete && acks == notFounds {
					resolve(core.ErrNotFound)
				} else {
					resolve(nil)
				}
			}
		}
		if !resolved {
			c.noteQuorumShortfall(g, acks, kind)
			switch {
			case acks == 0 && firstFail == nil && firstData != nil:
				// Every replica rejected the operation deterministically
				// (e.g. oversized value): a clean data error, nothing was
				// applied.
				resolve(firstData)
			default:
				cause := firstFail
				if cause == nil {
					cause = firstData
				}
				if cause == nil {
					cause = ErrShardDown
				}
				if acks > 0 && !errors.Is(cause, core.ErrUnconfirmed) {
					// Some replicas applied the write and the group is below
					// quorum: the outcome is indeterminate until repair
					// reconverges.
					cause = fmt.Errorf("%w; %w", cause, core.ErrUnconfirmed)
				}
				resolve(&ShardError{Shard: g.name, Err: fmt.Errorf("%w (%d/%d acks): %w", ErrNoQuorum, acks, g.quorum, cause)})
			}
		}
		op.Finish()
	}()
	return <-done
}

// noteQuorumShortfall counts, audits and trace-annotates one replicated
// write that missed its quorum.
func (c *Client) noteQuorumShortfall(g *groupState, acks int, detail string) {
	c.quorumShortfalls.Add(1)
	c.opts.Audit.Add(audit.Record{Kind: audit.KindQuorumShortfall, Actor: g.name,
		Detail: fmt.Sprintf("%s: %d/%d acks", detail, acks, g.quorum)})
	c.opts.Tracer.NoteFault(fmt.Sprintf("quorum shortfall group=%s %d/%d acks", g.name, acks, g.quorum))
}

// replicatedGet serves a read from the fastest healthy replica, failing
// over to the next on shard-level errors and on payload-MAC failures.
// Not-found from a healthy replica is authoritative (an up replica has
// every acked write) and is returned immediately.
func (c *Client) replicatedGet(g *groupState, key string) (val []byte, retErr error) {
	op := c.opts.Tracer.Start(int(c.traceSlot.Add(1)), "get")
	op.SetGroup(g.name)
	ref := op.Ref()
	defer func() {
		op.SetError(retErr)
		op.Finish()
	}()
	order := g.readOrder()
	probeFallback := len(order) == 0
	if probeFallback {
		// No replica is up. Try breaker probes on downed replicas so a
		// read-only workload can still resurrect the group.
		order = g.replicas
	}
	var lastErr error
	attempted := 0
	hedgeable := c.opts.HedgeReads && !probeFallback && len(order) >= 2
	if hedgeable {
		v, err, tried, done := c.hedgedGet(g, op, order, key)
		if done {
			return v, err
		}
		// Every hedged attempt failed at the shard level (or the primary
		// could not be admitted); fall through to the sequential walk —
		// tripped replicas will be skipped by their breakers.
		attempted += tried
		if err != nil {
			lastErr = err
		}
	}
	for _, rep := range order {
		var tok admitToken
		var ok bool
		if probeFallback {
			tok, ok = rep.admitProbe()
		} else {
			tok, ok = rep.admitRead()
		}
		if !ok {
			continue
		}
		attempted++
		s0 := op.Now()
		t0 := time.Now()
		v, err := backendGet(rep.backend, ref, key)
		d := time.Since(t0)
		rep.recordLatency(t0)
		err = c.observe(rep, tok, err, true, "")
		op.ReplicaSpanAt(rep.name, s0, op.Now())
		if err == nil {
			rep.noteLatency(d)
			rep.gets.Add(1)
			c.opts.Budget.OnSuccess()
			if attempted > 1 {
				c.failovers.Add(1)
				c.opts.Audit.Add(audit.Record{Kind: audit.KindReadFailover, Actor: rep.name,
					Detail: fmt.Sprintf("group %s: read served by attempt %d", g.name, attempted)})
				c.opts.Tracer.NoteFault(fmt.Sprintf("read failover group=%s served-by=%s attempt=%d", g.name, rep.name, attempted))
			}
			return v, nil
		}
		if errors.Is(err, core.ErrIntegrity) {
			// Integrity backstop: this replica returned a payload whose
			// MAC does not verify — treat like an outage and fail over.
			c.opts.Audit.Add(audit.Record{Kind: audit.KindByzantineFailover, Actor: rep.name,
				Detail: fmt.Sprintf("group %s: payload MAC failed verification", g.name)})
			c.opts.Tracer.NoteFault(fmt.Sprintf("byzantine failover group=%s replica=%s", g.name, rep.name))
			lastErr = err
			continue
		}
		if !c.opts.IsShardFailure(err) {
			return nil, err // data-level and authoritative (e.g. not-found)
		}
		lastErr = err
	}
	if attempted == 0 {
		for _, rep := range g.replicas {
			rep.errors.Add(1)
		}
		return nil, &ShardError{Shard: g.name, Err: ErrShardDown}
	}
	return nil, lastErr
}

// hedgedGet races the fastest replica against a budget-guarded hedge:
// the read is issued to order[0] immediately, and if no reply has
// arrived within hedgeDelay, a second copy goes to the next admittable
// replica. The first sealed-valid reply wins; the loser's late result
// is discarded (reads are idempotent, so a duplicate apply is
// harmless). Returns done=false when the caller should fall back to
// the sequential walk: the primary was not admittable, or every
// launched attempt failed at the shard level (tried reports how many
// attempts ran, err the last shard-level failure).
func (c *Client) hedgedGet(g *groupState, op *obs.Op, order []*replicaState, key string) (val []byte, err error, tried int, done bool) {
	primary := order[0]
	ptok, ok := primary.admitRead()
	if !ok {
		return nil, nil, 0, false
	}
	type hedgeReply struct {
		rep   *replicaState
		v     []byte
		err   error
		d     time.Duration
		start int64
	}
	// Buffered to the maximum attempt count so a losing straggler's send
	// never blocks: its reply is simply dropped with the channel.
	replies := make(chan hedgeReply, 2)
	ref := op.Ref() // primary and hedge share the cluster op's trace
	launch := func(rep *replicaState, tok admitToken) {
		s0 := op.Now()
		t0 := time.Now()
		v, gerr := backendGet(rep.backend, ref, key)
		d := time.Since(t0)
		rep.recordLatency(t0)
		gerr = c.observe(rep, tok, gerr, true, "")
		replies <- hedgeReply{rep: rep, v: v, err: gerr, d: d, start: s0}
	}
	go launch(primary, ptok)
	launched := 1
	timer := time.NewTimer(c.hedgeDelay(primary))
	defer timer.Stop()
	var lastErr error
	for received := 0; received < launched; {
		select {
		case r := <-replies:
			received++
			op.ReplicaSpanAt(r.rep.name, r.start, op.Now())
			switch {
			case r.err == nil:
				r.rep.noteLatency(r.d)
				r.rep.gets.Add(1)
				c.opts.Budget.OnSuccess()
				if r.rep != primary {
					c.hedgesWon.Add(1)
					c.opts.Tracer.NoteFault(fmt.Sprintf("hedge won group=%s replica=%s", g.name, r.rep.name))
				}
				return r.v, nil, launched, true
			case errors.Is(r.err, core.ErrIntegrity):
				// Integrity backstop, as in the sequential walk: treat the
				// replica as Byzantine and let the race (or the fallback
				// walk) serve the read elsewhere.
				c.opts.Audit.Add(audit.Record{Kind: audit.KindByzantineFailover, Actor: r.rep.name,
					Detail: fmt.Sprintf("group %s: payload MAC failed verification", g.name)})
				c.opts.Tracer.NoteFault(fmt.Sprintf("byzantine failover group=%s replica=%s", g.name, r.rep.name))
				lastErr = r.err
			case !c.opts.IsShardFailure(r.err):
				// Data-level and authoritative (e.g. not-found from a
				// healthy replica) — the race is decided.
				return nil, r.err, launched, true
			default:
				lastErr = r.err
			}
		case <-timer.C:
			if launched > 1 {
				continue
			}
			if !c.opts.Budget.TrySpend() {
				c.hedgesDenied.Add(1)
				continue
			}
			for _, rep := range order[1:] {
				if tok, hok := rep.admitRead(); hok {
					launched++
					c.hedgesLaunched.Add(1)
					c.opts.Tracer.NoteFault(fmt.Sprintf("hedge launched group=%s replica=%s", g.name, rep.name))
					go launch(rep, tok)
					break
				}
			}
		}
	}
	return nil, lastErr, launched, false
}

// hedgeDelay estimates the primary replica's p95 latency from its
// smoothed (EWMA) latency — 3x the mean is the standard tail estimate
// for exponential-ish service times — floored at HedgeMinDelay and
// capped at RetryBackoff so a cold or noisy estimate cannot push the
// hedge past the breaker's own patience.
func (c *Client) hedgeDelay(rep *replicaState) time.Duration {
	d := 3 * time.Duration(rep.ewma.Load())
	if d < c.opts.HedgeMinDelay {
		d = c.opts.HedgeMinDelay
	}
	if d > c.opts.RetryBackoff {
		d = c.opts.RetryBackoff
	}
	return d
}

// readOrder snapshots the group's up replicas, fastest (EWMA) first.
func (g *groupState) readOrder() []*replicaState {
	ups := make([]*replicaState, 0, len(g.replicas))
	for _, rep := range g.replicas {
		rep.mu.Lock()
		up := !rep.down && !rep.repairing
		rep.mu.Unlock()
		if up {
			ups = append(ups, rep)
		}
	}
	sort.SliceStable(ups, func(i, j int) bool { return ups[i].ewma.Load() < ups[j].ewma.Load() })
	return ups
}

// recordLatency adds one operation's elapsed time to the shard's
// latency histogram, striping across histogram shards for concurrency.
func (s *replicaState) recordLatency(start time.Time) {
	s.lat.Record(int(s.latIdx.Add(1)), time.Since(start))
}

// noteLatency folds one sample into the read-preference EWMA (1/8 new).
func (s *replicaState) noteLatency(d time.Duration) {
	old := s.ewma.Load()
	if old == 0 {
		s.ewma.Store(int64(d))
		return
	}
	s.ewma.Store(old - old/8 + int64(d)/8)
}

// admit lets an operation through unless the shard's breaker is open,
// stamping it with the breaker epoch it was admitted under. This is the
// single-replica-group policy: when down, one probe per backoff window.
func (s *replicaState) admit() (admitToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		return admitToken{epoch: s.epoch}, nil
	}
	if s.probing || time.Now().Before(s.retryAt) {
		return admitToken{}, &ShardError{Shard: s.name, Err: ErrShardDown}
	}
	s.probing = true // this op is the single half-open probe
	return admitToken{epoch: s.epoch, probe: true}, nil
}

// admitWrite decides a replicated write's fate for this replica: live
// (token returned), or journaled for repair because the replica is down
// or repairing. The journal append happens under the same lock as the
// state check, so repair's journal-empty rejoin can never miss a write.
func (s *replicaState) admitWrite(journalCap int, key string) (admitToken, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down && !s.repairing {
		return admitToken{epoch: s.epoch}, true
	}
	s.journalLocked(journalCap, key)
	s.missed.Add(1)
	return admitToken{}, false
}

// admitRead admits a replicated read only on an up replica.
func (s *replicaState) admitRead() (admitToken, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down && !s.repairing {
		return admitToken{epoch: s.epoch}, true
	}
	return admitToken{}, false
}

// admitProbe admits one half-open probe on a downed replica whose
// backoff has elapsed (replicated groups; used when no replica is up and
// by the background repair scan).
func (s *replicaState) admitProbe() (admitToken, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		if s.repairing {
			return admitToken{}, false
		}
		return admitToken{epoch: s.epoch}, true
	}
	if s.probing || time.Now().Before(s.retryAt) {
		return admitToken{}, false
	}
	s.probing = true
	return admitToken{epoch: s.epoch, probe: true}, true
}

// journalLocked appends key to the missed-write journal (caller holds
// s.mu). Overflow drops the whole journal and flags a full sync — an
// incomplete journal must never masquerade as a complete delta.
func (s *replicaState) journalLocked(cap int, key string) {
	if s.journalDrop {
		return
	}
	if len(s.journal) >= cap {
		s.journal = nil
		s.journalDrop = true
		s.needsFullSync = true
		return
	}
	s.journal = append(s.journal, key)
}

// observe feeds an operation result back into the replica's breaker and
// wraps shard-level failures in a ShardError. Data-level errors (e.g.
// not-found, integrity) pass through unchanged and prove liveness.
//
// Only results whose token epoch is still current may transition the
// breaker, and only a probe's success may close it — a success that was
// admitted before the trip proves nothing about the shard now.
//
// For replicated groups (replicated=true) two extra rules apply: a
// closing probe lands in the repairing state when the replica has
// anything to catch up on, and a failed write (writeKey != "") journals
// its key so repair re-syncs it — including ambiguous outcomes
// (ErrUnconfirmed), where the replica may or may not have applied it.
func (c *Client) observe(s *replicaState, tok admitToken, err error, replicated bool, writeKey string) error {
	fatal := err != nil && c.opts.IsShardFailure(err)
	ambiguous := err != nil && errors.Is(err, core.ErrUnconfirmed)
	tripped := false
	s.mu.Lock()
	current := tok.epoch == s.epoch
	switch {
	case fatal && current:
		// Trip (or deepen, if this was the failed probe).
		tripped = true
		s.epoch++
		s.down = true
		s.probing = false
		s.failures++
		if replicated {
			s.repairing = true
			if c.opts.OpenRepair != nil {
				// The outage may have been a restart with state loss; a
				// snapshot source exists, so re-sync conservatively.
				s.needsFullSync = true
			}
		}
		backoff := c.opts.RetryBackoff << uint(min(s.failures-1, 16))
		if backoff > c.opts.MaxBackoff || backoff <= 0 {
			backoff = c.opts.MaxBackoff
		}
		s.retryAt = time.Now().Add(backoff)
	case !fatal && current && s.down && tok.probe:
		// The probe came back healthy: close and reset the backoff.
		s.epoch++
		s.down = false
		s.probing = false
		s.failures = 0
		if replicated && (s.needsFullSync || s.journalDrop || len(s.journal) > 0) {
			s.repairing = true // serving resumes only after repair
		} else {
			s.repairing = false
		}
	case !fatal && current && !s.down:
		// Routine success on a closed breaker: nothing to transition.
	default:
		// Stale token (the breaker moved on while this op was in
		// flight): the result must not flap state it predates.
	}
	if replicated && writeKey != "" && err != nil && (fatal || ambiguous) {
		// This replica missed (or may have missed) the write: remember
		// the key so repair re-syncs it from a healthy donor.
		s.repairing = true
		s.journalLocked(c.opts.JournalCap, writeKey)
	}
	s.mu.Unlock()
	if tripped {
		c.opts.Audit.Add(audit.Record{Kind: audit.KindBreakerTrip, Actor: s.name, Detail: err.Error()})
		c.opts.Tracer.NoteFault("breaker trip replica=" + s.name)
	}
	if err != nil {
		s.errors.Add(1)
		if fatal {
			return &ShardError{Shard: s.name, Err: err}
		}
	}
	return err
}

// Degraded returns the names of replicas that are not currently serving
// (breaker open, or suspended while repair catches them up), sorted. An
// empty slice means every replica is believed healthy.
func (c *Client) Degraded() []string {
	var out []string
	for name, rep := range c.reps {
		rep.mu.Lock()
		bad := rep.down || rep.repairing
		rep.mu.Unlock()
		if bad {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Healthy reports whether every replica is serving.
func (c *Client) Healthy() bool { return len(c.Degraded()) == 0 }

// Available reports whether at least one replica is currently serving —
// the cluster-level readiness signal (/healthz reports 503 when false).
func (c *Client) Available() bool {
	for _, rep := range c.reps {
		rep.mu.Lock()
		up := !rep.down && !rep.repairing
		rep.mu.Unlock()
		if up {
			return true
		}
	}
	return false
}

// ShardStats is one replica's activity and health snapshot.
type ShardStats struct {
	Name string
	// Group is the replica group (ring position) this replica belongs
	// to. Equal to Name for single-replica groups.
	Group               string
	Puts, Gets, Deletes uint64
	Errors              uint64
	Down                bool
	// State is "up", "down" or "repairing".
	State               string
	ConsecutiveFailures int
	// Lag counts writes this replica missed (journaled or skipped) since
	// it was last fully caught up.
	Lag uint64
	// Repairs counts completed anti-entropy repairs of this replica.
	Repairs uint64
	// Ownership is the replica's share of the hash space: its group's
	// expected fraction of keys under a uniform distribution.
	Ownership float64
	// Latency summarizes whole-operation latency against this shard as
	// seen by this client, retries and transport included (always on —
	// the recording cost is one clock read and a striped histogram add).
	Latency hist.Quantiles
}

// Stats aggregates cluster activity.
type Stats struct {
	Shards              []ShardStats // sorted by group, ring order
	Groups              int
	Puts, Gets, Deletes uint64
	Errors              uint64
	// Failovers counts replicated reads served by a replica other than
	// the first one tried.
	Failovers uint64
	// QuorumShortfalls counts replicated writes that missed their quorum.
	QuorumShortfalls uint64
	// Repairs and RepairFailures count completed and aborted anti-entropy
	// repair runs across all replicas.
	Repairs        uint64
	RepairFailures uint64
	// HedgesLaunched counts secondary reads issued by the hedge timer,
	// HedgesWon those where the secondary's sealed-valid reply arrived
	// first, and HedgesDenied hedge attempts the retry budget refused.
	HedgesLaunched uint64
	HedgesWon      uint64
	HedgesDenied   uint64
	// RetryBudget snapshots the token bucket that hedges and
	// admission-control retries spend from.
	RetryBudget overload.BudgetStats
	// GroupSkew is the imbalance of routed ops across replica groups
	// (ring positions): how unevenly this client's traffic lands on
	// the shards, regardless of why. Balanced traffic has CV 0 and
	// MaxMean 1; see heat.SkewOf.
	GroupSkew heat.Skew
	// HottestGroup is the replica group that received the most routed
	// ops ("" before any traffic).
	HottestGroup string
}

// Stats snapshots per-replica counters, health and ring ownership.
func (c *Client) Stats() Stats {
	own := c.ring.OwnershipFractions()
	st := Stats{
		Groups:           len(c.order),
		Failovers:        c.failovers.Load(),
		QuorumShortfalls: c.quorumShortfalls.Load(),
		Repairs:          c.repairsDone.Load(),
		RepairFailures:   c.repairFailures.Load(),
		HedgesLaunched:   c.hedgesLaunched.Load(),
		HedgesWon:        c.hedgesWon.Load(),
		HedgesDenied:     c.hedgesDenied.Load(),
		RetryBudget:      c.opts.Budget.Stats(),
	}
	groupOps := make([]uint64, 0, len(c.order))
	for _, name := range c.order {
		g := c.groups[name]
		var groupMax uint64
		for _, rep := range g.replicas {
			rep.mu.Lock()
			state := "up"
			if rep.down {
				state = "down"
			} else if rep.repairing {
				state = "repairing"
			}
			ss := ShardStats{
				Name:                rep.name,
				Group:               g.name,
				Puts:                rep.puts.Load(),
				Gets:                rep.gets.Load(),
				Deletes:             rep.deletes.Load(),
				Errors:              rep.errors.Load(),
				Down:                rep.down,
				State:               state,
				ConsecutiveFailures: rep.failures,
				Lag:                 rep.missed.Load() + uint64(len(rep.journal)),
				Repairs:             rep.repairs.Load(),
				Ownership:           own[g.name],
				Latency:             rep.lat.Snapshot().Quantiles(),
			}
			rep.mu.Unlock()
			st.Shards = append(st.Shards, ss)
			st.Puts += ss.Puts
			st.Gets += ss.Gets
			st.Deletes += ss.Deletes
			st.Errors += ss.Errors
			if ops := ss.Puts + ss.Gets + ss.Deletes; ops > groupMax {
				groupMax = ops
			}
		}
		// A group's routed load is its busiest replica's op count: exact
		// for single-replica groups, and for replicated ones it avoids
		// multiplying quorum fan-out into the skew signal.
		groupOps = append(groupOps, groupMax)
	}
	st.GroupSkew = SkewOfGroups(c.order, groupOps, &st.HottestGroup)
	return st
}

// SkewOfGroups computes load imbalance over per-group op counts and,
// when hottest is non-nil, names the busiest group into it ("" when
// counts are empty or all zero).
func SkewOfGroups(names []string, ops []uint64, hottest *string) heat.Skew {
	if hottest != nil {
		*hottest = ""
		var best uint64
		for i, n := range ops {
			if n > best && i < len(names) {
				best = n
				*hottest = names[i]
			}
		}
	}
	return heat.SkewOf(ops)
}

// Budget exposes the client's retry/hedge token bucket (never nil —
// withDefaults installs one), so callers can share it or surface its
// stats.
func (c *Client) Budget() *overload.RetryBudget { return c.opts.Budget }

// Close stops the repair goroutine and closes every replica backend.
// Safe to call twice.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.stopCh)
	c.wg.Wait()
	var firstErr error
	for _, name := range c.order {
		for _, rep := range c.groups[name].replicas {
			if err := rep.backend.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
