package cluster

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"precursor/internal/core"
	"precursor/internal/hist"
)

// Backend is one shard's key-value connection. *core.Client satisfies it,
// as does the root package's *precursor.Pool (the usual choice, so many
// goroutines can drive the cluster client concurrently).
type Backend interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Close() error
}

// Shard names one cluster member and its connection.
type Shard struct {
	// Name identifies the shard on the ring. Placement depends only on
	// the set of names, so every client must use the same ones (the root
	// package uses the shard's listen address).
	Name    string
	Backend Backend
}

// Options tunes a cluster Client.
type Options struct {
	// VirtualNodes per shard on the ring (DefaultVirtualNodes if <= 0).
	VirtualNodes int
	// RetryBackoff is the base delay before a failed shard is probed
	// again (default 250ms). The delay doubles per consecutive failure up
	// to MaxBackoff (default 8s).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// IsShardFailure classifies an operation error as a shard outage
	// (trips the breaker) rather than a data-level error like not-found.
	// Default: core.ErrClosed or core.ErrTimeout.
	IsShardFailure func(error) bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.VirtualNodes <= 0 {
		out.VirtualNodes = DefaultVirtualNodes
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 250 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 8 * time.Second
	}
	if out.IsShardFailure == nil {
		out.IsShardFailure = func(err error) bool {
			return errors.Is(err, core.ErrClosed) || errors.Is(err, core.ErrTimeout)
		}
	}
	return out
}

// Client routes operations across shards by consistent key hash.
//
// Each shard has an independent health breaker: when an operation fails
// with a shard-level error the shard is marked down and subsequent
// operations routed to it fail immediately with a ShardError wrapping
// ErrShardDown, until the retry backoff elapses and a single probe
// operation is let through. Other shards are unaffected — a dead shard
// costs its own keys, never the cluster.
//
// Client is safe for concurrent use when its Backends are (use pools).
type Client struct {
	ring   *Ring
	shards map[string]*shardState
	opts   Options
	closed atomic.Bool
}

// shardState is one shard's connection plus health and counters.
//
// The breaker is epoch-based so slow, overlapping operations cannot
// flap it: admit hands each operation a token stamped with the current
// epoch, every state transition bumps the epoch, and a result is only
// allowed to transition the breaker if its token is still current.
// Without this, an operation admitted while the shard was healthy but
// completing after it tripped would close (on success) or deepen (on
// failure) the breaker it knows nothing about.
type shardState struct {
	name    string
	backend Backend

	puts, gets, deletes atomic.Uint64
	errors              atomic.Uint64

	// lat records whole-operation latency against this shard as seen by
	// this client (queueing, transport and retries included). latIdx
	// rotates recordings across the sharded histogram's stripes, since
	// many goroutines may drive one shard through a pool.
	lat    *hist.Sharded
	latIdx atomic.Uint32

	mu       sync.Mutex
	epoch    uint64 // bumped on every trip/close transition
	down     bool
	failures int       // consecutive shard-level failures
	retryAt  time.Time // next probe admission when down
	probing  bool      // a probe op is in flight
}

// admitToken records the breaker state an operation was admitted under.
type admitToken struct {
	epoch uint64
	probe bool // this op is the single half-open probe
}

// New builds a cluster client over the given shards.
func New(shards []Shard, opts Options) (*Client, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	o := opts.withDefaults()
	names := make([]string, len(shards))
	states := make(map[string]*shardState, len(shards))
	for i, s := range shards {
		names[i] = s.Name
		states[s.Name] = &shardState{name: s.Name, backend: s.Backend, lat: hist.NewSharded(0)}
	}
	if len(states) != len(shards) {
		return nil, errors.New("precursor/cluster: duplicate shard name")
	}
	return &Client{ring: NewRing(names, o.VirtualNodes), shards: states, opts: o}, nil
}

// Ring exposes the placement ring (for metrics and tooling).
func (c *Client) Ring() *Ring { return c.ring }

// ShardFor returns the name of the shard that owns key.
func (c *Client) ShardFor(key string) string { return c.ring.Lookup(key) }

// Put stores value under key on the owning shard.
func (c *Client) Put(key string, value []byte) error {
	sh, tok, err := c.route(key)
	if err != nil {
		return err
	}
	t0 := time.Now()
	err = sh.backend.Put(key, value)
	sh.recordLatency(t0)
	if err = c.observe(sh, tok, err); err == nil {
		sh.puts.Add(1)
	}
	return err
}

// Get fetches and verifies the value for key from the owning shard.
func (c *Client) Get(key string) ([]byte, error) {
	sh, tok, err := c.route(key)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	v, err := sh.backend.Get(key)
	sh.recordLatency(t0)
	if err = c.observe(sh, tok, err); err == nil {
		sh.gets.Add(1)
	}
	return v, err
}

// Delete removes key from the owning shard.
func (c *Client) Delete(key string) error {
	sh, tok, err := c.route(key)
	if err != nil {
		return err
	}
	t0 := time.Now()
	err = sh.backend.Delete(key)
	sh.recordLatency(t0)
	if err = c.observe(sh, tok, err); err == nil {
		sh.deletes.Add(1)
	}
	return err
}

// recordLatency adds one operation's elapsed time to the shard's
// latency histogram, striping across histogram shards for concurrency.
func (s *shardState) recordLatency(start time.Time) {
	s.lat.Record(int(s.latIdx.Add(1)), time.Since(start))
}

// route picks the owning shard and consults its breaker.
func (c *Client) route(key string) (*shardState, admitToken, error) {
	if c.closed.Load() {
		return nil, admitToken{}, ErrClientClosed
	}
	sh := c.shards[c.ring.Lookup(key)]
	if sh == nil {
		return nil, admitToken{}, ErrNoShards
	}
	tok, err := sh.admit()
	if err != nil {
		sh.errors.Add(1)
		return nil, admitToken{}, err
	}
	return sh, tok, nil
}

// admit lets an operation through unless the shard's breaker is open,
// stamping it with the breaker epoch it was admitted under.
func (s *shardState) admit() (admitToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		return admitToken{epoch: s.epoch}, nil
	}
	if s.probing || time.Now().Before(s.retryAt) {
		return admitToken{}, &ShardError{Shard: s.name, Err: ErrShardDown}
	}
	s.probing = true // this op is the single half-open probe
	return admitToken{epoch: s.epoch, probe: true}, nil
}

// observe feeds an operation result back into the shard's breaker and
// wraps shard-level failures in a ShardError. Data-level errors (e.g.
// not-found, integrity) pass through unchanged and prove liveness.
//
// Only results whose token epoch is still current may transition the
// breaker, and only a probe's success may close it — a success that was
// admitted before the trip proves nothing about the shard now.
func (c *Client) observe(s *shardState, tok admitToken, err error) error {
	fatal := err != nil && c.opts.IsShardFailure(err)
	s.mu.Lock()
	current := tok.epoch == s.epoch
	switch {
	case fatal && current:
		// Trip (or deepen, if this was the failed probe).
		s.epoch++
		s.down = true
		s.probing = false
		s.failures++
		backoff := c.opts.RetryBackoff << uint(min(s.failures-1, 16))
		if backoff > c.opts.MaxBackoff || backoff <= 0 {
			backoff = c.opts.MaxBackoff
		}
		s.retryAt = time.Now().Add(backoff)
	case !fatal && current && s.down && tok.probe:
		// The probe came back healthy: close and reset the backoff.
		s.epoch++
		s.down = false
		s.probing = false
		s.failures = 0
	case !fatal && current && !s.down:
		// Routine success on a closed breaker: nothing to transition.
	default:
		// Stale token (the breaker moved on while this op was in
		// flight): the result must not flap state it predates.
	}
	s.mu.Unlock()
	if err != nil {
		s.errors.Add(1)
		if fatal {
			return &ShardError{Shard: s.name, Err: err}
		}
	}
	return err
}

// Degraded returns the names of shards whose breaker is currently open,
// sorted. An empty slice means every shard is believed healthy.
func (c *Client) Degraded() []string {
	var out []string
	for name, sh := range c.shards {
		sh.mu.Lock()
		down := sh.down
		sh.mu.Unlock()
		if down {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Healthy reports whether no shard is marked down.
func (c *Client) Healthy() bool { return len(c.Degraded()) == 0 }

// ShardStats is one shard's activity and health snapshot.
type ShardStats struct {
	Name                string
	Puts, Gets, Deletes uint64
	Errors              uint64
	Down                bool
	ConsecutiveFailures int
	// Ownership is the shard's share of the hash space: its expected
	// fraction of keys under a uniform distribution.
	Ownership float64
	// Latency summarizes whole-operation latency against this shard as
	// seen by this client, retries and transport included (always on —
	// the recording cost is one clock read and a striped histogram add).
	Latency hist.Quantiles
}

// Stats aggregates cluster activity.
type Stats struct {
	Shards              []ShardStats // sorted by name
	Puts, Gets, Deletes uint64
	Errors              uint64
}

// Stats snapshots per-shard counters, health and ring ownership.
func (c *Client) Stats() Stats {
	own := c.ring.OwnershipFractions()
	st := Stats{Shards: make([]ShardStats, 0, len(c.shards))}
	for _, name := range c.ring.Shards() {
		sh := c.shards[name]
		sh.mu.Lock()
		ss := ShardStats{
			Name:                name,
			Puts:                sh.puts.Load(),
			Gets:                sh.gets.Load(),
			Deletes:             sh.deletes.Load(),
			Errors:              sh.errors.Load(),
			Down:                sh.down,
			ConsecutiveFailures: sh.failures,
			Ownership:           own[name],
			Latency:             sh.lat.Snapshot().Quantiles(),
		}
		sh.mu.Unlock()
		st.Shards = append(st.Shards, ss)
		st.Puts += ss.Puts
		st.Gets += ss.Gets
		st.Deletes += ss.Deletes
		st.Errors += ss.Errors
	}
	return st
}

// Close closes every shard backend. Safe to call twice.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, name := range c.ring.Shards() {
		if err := c.shards[name].backend.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
