// Package cluster implements client-routed sharding for Precursor.
//
// Precursor's design is client-centric: the client already performs the
// payload cryptography, so the server enclave stays minimal (§3.2). This
// package extends the same argument to scale-out. Shard placement is
// computed on the client from a consistent-hash ring over the shard
// names; each shard is an ordinary single-node Precursor server that the
// client attests independently. The servers never learn the ring, never
// talk to each other, and need no inter-enclave channel — the trust model
// of the single-node system carries over shard by shard.
//
// The pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes (ring.go). Stable
//     across membership lists: adding a shard moves ~1/N of the keyspace.
//   - Client: routes Put/Get/Delete by key hash to per-shard backends,
//     tracks per-shard health with retry/backoff so a dead shard fails
//     fast (typed ShardError wrapping ErrShardDown) instead of hanging
//     every operation, and aggregates per-shard statistics.
//   - Replication: each ring position can be a ReplicaGroup of R servers
//     (NewReplicated). Writes fan out to every live replica and succeed
//     on a quorum of acks; reads come from the fastest healthy replica
//     with transparent failover (the client-side payload MAC is the
//     integrity backstop against a Byzantine replica); a recovering
//     replica is repaired — donor sealed snapshot + delta + journal
//     replay (repair.go) — before it serves again.
//   - Topology: deployment bookkeeping shared by cmd/precursor-server's
//     -shard i/n mode and cmd/precursor-cluster (server.go).
//
// The public entry points live in the root package: precursor.ServeCluster
// launches an N-shard deployment over the TCP fabric and
// precursor.DialCluster attests and connects to one.
package cluster

import (
	"errors"
	"fmt"
)

// Errors returned by cluster operations.
var (
	// ErrNoShards is returned by New when the shard list is empty.
	ErrNoShards = errors.New("precursor/cluster: no shards")
	// ErrShardDown is wrapped by ShardError while a shard's breaker is
	// open: the shard failed recently and the retry backoff has not
	// elapsed, so operations routed to it fail immediately.
	ErrShardDown = errors.New("precursor/cluster: shard down")
	// ErrClientClosed is returned by operations on a closed cluster client.
	ErrClientClosed = errors.New("precursor/cluster: client closed")
	// ErrNoQuorum is wrapped by ShardError when a replicated write got
	// fewer acks than the group's write quorum. If any replica did apply
	// the write, core.ErrUnconfirmed is joined in as well: the outcome is
	// indeterminate until anti-entropy repair reconverges the group.
	ErrNoQuorum = errors.New("precursor/cluster: write quorum not reached")
)

// ShardError ties an operation failure to the shard it was routed to, so
// callers can tell a routing-destination outage from a data error.
type ShardError struct {
	Shard string // shard name, as passed to New
	Err   error  // underlying cause (ErrShardDown while the breaker is open)
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("precursor/cluster: shard %s: %v", e.Shard, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }
