package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Server-side helpers. Precursor shards are ordinary single-node servers
// — routing lives entirely in the client — so the server side of the
// cluster subsystem is bookkeeping: naming shards consistently and
// parsing the -shard i/n flag that cmd/precursor-server and
// cmd/precursor-cluster share.

// ShardID identifies one member of an N-shard deployment, as given to
// precursor-server's -shard i/n flag. Index is zero-based.
type ShardID struct {
	Index int
	Count int
}

// ParseShardID parses "i/n" (e.g. "2/4", zero-based index).
func ParseShardID(s string) (ShardID, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return ShardID{}, fmt.Errorf("precursor/cluster: shard %q: want i/n", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(idx))
	n, err2 := strconv.Atoi(strings.TrimSpace(cnt))
	if err1 != nil || err2 != nil {
		return ShardID{}, fmt.Errorf("precursor/cluster: shard %q: want integers i/n", s)
	}
	id := ShardID{Index: i, Count: n}
	return id, id.Validate()
}

// Validate checks 0 <= Index < Count.
func (id ShardID) Validate() error {
	if id.Count <= 0 || id.Index < 0 || id.Index >= id.Count {
		return fmt.Errorf("precursor/cluster: shard %d/%d out of range", id.Index, id.Count)
	}
	return nil
}

// String renders the flag form "i/n".
func (id ShardID) String() string { return fmt.Sprintf("%d/%d", id.Index, id.Count) }

// ShardNames returns the canonical names for an n-shard deployment:
// "shard-0" … "shard-n-1". Deployments that know their members only by
// address may use addresses as names instead; what matters is that every
// client uses the same set.
func ShardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "shard-" + strconv.Itoa(i)
	}
	return names
}
