package cluster_test

// Chaos invariant suite for the sharded client path: a real
// ServeCluster deployment over the TCP fabric, dialed through the root
// DialCluster with the fault-injection fabric (internal/faultfab)
// interposed on every client connection via DialConfig.WrapConn. The
// suite checks the cluster-level versions of the ISSUE 2 invariants:
//
//  1. An acknowledged put is never lost, even as operations hop between
//     pooled connections and shards trip their breakers.
//  2. A get never returns a value failing its MAC (corruption surfaces
//     as ErrIntegrity, never as data).
//  3. Every perturbed operation maps to a typed error (ErrTimeout,
//     ErrReplay, ErrUnconfirmed, ErrClosed, ErrShardDown) — never
//     silent success, never an untyped failure.
//  4. A partitioned shard trips its breaker (fail-fast ShardError) while
//     healthy shards keep serving, and the breaker closes again after
//     heal via a single successful probe.
//
// The per-key model is the same candidate-set argument as the core
// suite, with one extra fact doing the work across pooled connections:
// every injected delivery delay (≤ 2×MaxDelay = 20ms) is far below the
// operation timeout (150ms), so by the time an operation returns — ack
// or timeout — its request frame has landed or died. Operations on one
// key are sequential per worker, so an acknowledged response still
// resolves every older maybe-applied write even when the next operation
// uses a different pooled connection.
//
// A failing run reprints the fabric seed; rerun with -faultseed=<seed>
// (same -chaosops) to redraw the schedule.

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"precursor"
	"precursor/internal/faultfab"
)

var (
	faultSeed = flag.Uint64("faultseed", 0xC0FFEE, "fault-injection schedule seed; a failing chaos run prints the seed that reproduces it")
	chaosOps  = flag.Int("chaosops", 3000, "total operations the chaos suite drives through the faulty cluster")
)

// absentVal marks "key not present" in a candidate set.
const absentVal = ""

const (
	clusterShards    = 3
	clusterWorkers   = 6
	clusterKeys      = 4 // per worker; workers use disjoint key spaces
	clusterOpTimeout = 150 * time.Millisecond
	clusterBackoff   = 100 * time.Millisecond
	clusterMaxBack   = 500 * time.Millisecond
)

// clusterChaosConfig faults only the ring traffic (ClassWrite) and only
// client→server: the server side of a TCP connection cannot be wrapped,
// and the bootstrap SENDs are left clean so pool redials stay reliable.
// The tiny Reset rate kills connections outright, exercising the pool's
// discard-and-redial path under load.
func clusterChaosConfig(seed uint64) faultfab.Config {
	ring := faultfab.ClassProbs{
		Drop: 0.05, Dup: 0.02, Corrupt: 0.01, Delay: 0.05, Reset: 0.002,
		MaxDelay: 10 * time.Millisecond,
	}
	return faultfab.Config{
		Seed: seed,
		C2S:  faultfab.ClassMap{faultfab.ClassWrite: ring},
	}
}

// clusterHarness is a live cluster, its fault fabric(s), and the shared
// failure latch.
type clusterHarness struct {
	t     *testing.T
	svc   *precursor.ClusterService
	specs []precursor.ShardSpec
	ffab  *faultfab.Fabric
	cc    *precursor.ClusterClient

	stop    atomic.Bool
	mu      sync.Mutex
	failure string

	ops, acked, transient, integrity atomic.Uint64
}

// newClusterHarness serves clusterShards shards and dials them through
// wrap (nil = raw connections).
func newClusterHarness(t *testing.T, ffab *faultfab.Fabric, connsPerShard int, wrap func(precursor.Conn) precursor.Conn) *clusterHarness {
	t.Helper()
	svc, err := precursor.ServeCluster(clusterShards, precursor.ServerConfig{
		Workers:      4,
		PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatalf("ServeCluster: %v", err)
	}
	t.Cleanup(svc.Close)

	specs := svc.Specs()
	cc, err := precursor.DialCluster(specs, precursor.ClusterConfig{
		ConnsPerShard: connsPerShard,
		Timeout:       clusterOpTimeout,
		RetryBackoff:  clusterBackoff,
		MaxBackoff:    clusterMaxBack,
		WrapConn:      wrap,
	})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	t.Cleanup(func() { _ = cc.Close() })
	return &clusterHarness{t: t, svc: svc, specs: specs, ffab: ffab, cc: cc}
}

// fail records the first invariant violation with its reproduction line
// and stops every worker.
func (h *clusterHarness) fail(format string, args ...any) {
	h.mu.Lock()
	if h.failure == "" {
		h.failure = fmt.Sprintf(format, args...) + fmt.Sprintf(
			"\nreproduce: go test ./internal/cluster/ -run TestChaosCluster -faultseed=%d -chaosops=%d\nfabric: %s",
			h.ffab.Seed(), *chaosOps, h.ffab.Summary())
	}
	h.mu.Unlock()
	h.stop.Store(true)
}

func (h *clusterHarness) check(t *testing.T) {
	t.Helper()
	h.mu.Lock()
	failure := h.failure
	h.mu.Unlock()
	if failure != "" {
		t.Fatal(failure)
	}
}

// transientErr reports outcomes invariant 3 allows for perturbed ops.
func transientErr(err error) bool {
	return errors.Is(err, precursor.ErrTimeout) || errors.Is(err, precursor.ErrReplay) ||
		errors.Is(err, precursor.ErrUnconfirmed) || errors.Is(err, precursor.ErrClosed) ||
		errors.Is(err, precursor.ErrShardDown)
}

// clusterWorker drives sequential mixed operations over its own key
// space through the shared cluster client, maintaining per-key candidate
// sets exactly as the core chaos suite does.
type clusterWorker struct {
	h     *clusterHarness
	id    int
	rng   *rand.Rand
	model map[string]map[string]bool
}

func newClusterWorker(h *clusterHarness, id int) *clusterWorker {
	w := &clusterWorker{
		h:     h,
		id:    id,
		rng:   rand.New(rand.NewPCG(h.ffab.Seed(), uint64(id))),
		model: make(map[string]map[string]bool, clusterKeys),
	}
	for k := 0; k < clusterKeys; k++ {
		w.model[w.key(k)] = map[string]bool{absentVal: true}
	}
	return w
}

func (w *clusterWorker) key(k int) string { return fmt.Sprintf("w%d-k%d", w.id, k) }

func (w *clusterWorker) value(key string, op int) string {
	return fmt.Sprintf("%s-o%d|", key, op) + strings.Repeat("x", w.rng.IntN(1024))
}

func (w *clusterWorker) run(ops int) {
	for op := 0; op < ops; op++ {
		if w.h.stop.Load() {
			return
		}
		key := w.key(w.rng.IntN(clusterKeys))
		r := w.rng.Float64()
		var err error
		switch {
		case r < 0.35:
			err = w.doPut(key, op)
		case r < 0.50:
			err = w.doDelete(key)
		default:
			err = w.doGet(key)
		}
		w.h.ops.Add(1)
		if err != nil && transientErr(err) {
			w.h.transient.Add(1)
		}
	}
}

func (w *clusterWorker) doPut(key string, op int) error {
	v := w.value(key, op)
	err := w.h.cc.Put(key, []byte(v))
	switch {
	case err == nil:
		w.model[key] = map[string]bool{v: true}
		w.h.acked.Add(1)
	case errors.Is(err, precursor.ErrUnconfirmed), errors.Is(err, precursor.ErrClosed):
		// Maybe applied: the frame may have landed before the fault.
		w.model[key][v] = true
	case transientErr(err):
		// Never admitted (breaker open, pool acquire timed out): the
		// request was not sent, so the model is unchanged.
	default:
		w.h.fail("worker %d: Put(%s) returned disallowed error: %v", w.id, key, err)
	}
	return err
}

func (w *clusterWorker) doDelete(key string) error {
	err := w.h.cc.Delete(key)
	switch {
	case err == nil:
		w.model[key] = map[string]bool{absentVal: true}
		w.h.acked.Add(1)
	case errors.Is(err, precursor.ErrNotFound):
		if !w.model[key][absentVal] {
			w.h.fail("worker %d: Delete(%s) says not-found but candidates are %v", w.id, key, candidates(w.model[key]))
			return err
		}
		w.model[key] = map[string]bool{absentVal: true}
	case errors.Is(err, precursor.ErrUnconfirmed), errors.Is(err, precursor.ErrClosed):
		w.model[key][absentVal] = true
	case transientErr(err):
	default:
		w.h.fail("worker %d: Delete(%s) returned disallowed error: %v", w.id, key, err)
	}
	return err
}

func (w *clusterWorker) doGet(key string) error {
	v, err := w.h.cc.Get(key)
	switch {
	case err == nil:
		if !w.model[key][string(v)] {
			w.h.fail("worker %d: Get(%s) returned %q, not among candidates %v",
				w.id, key, truncate(string(v)), candidates(w.model[key]))
			return nil
		}
		w.model[key] = map[string]bool{string(v): true}
		w.h.acked.Add(1)
	case errors.Is(err, precursor.ErrNotFound):
		if !w.model[key][absentVal] {
			w.h.fail("worker %d: Get(%s) says not-found but candidates are %v", w.id, key, candidates(w.model[key]))
			return err
		}
		w.model[key] = map[string]bool{absentVal: true}
	case errors.Is(err, precursor.ErrIntegrity):
		// Tamper evidence working as designed (a corrupted put frame
		// poisoned the stored blob; the MAC check refused to return it).
		w.h.integrity.Add(1)
	case transientErr(err):
	default:
		w.h.fail("worker %d: Get(%s) returned disallowed error: %v", w.id, key, err)
	}
	return err
}

// verify reads every key back after the storm, riding out breaker
// backoffs; any returned answer must be legal.
func (w *clusterWorker) verify() {
	for k := 0; k < clusterKeys; k++ {
		for attempt := 0; attempt < 20; attempt++ {
			if w.h.stop.Load() {
				return
			}
			err := w.doGet(w.key(k))
			if err == nil || errors.Is(err, precursor.ErrNotFound) || errors.Is(err, precursor.ErrIntegrity) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func candidates(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		if v == absentVal {
			out = append(out, "<absent>")
		} else {
			out = append(out, truncate(v))
		}
	}
	return out
}

func truncate(s string) string {
	if i := strings.IndexByte(s, '|'); i >= 0 {
		return s[:i+1] + "…"
	}
	if len(s) > 48 {
		return s[:48] + "…"
	}
	return s
}

// TestChaosClusterPath drives concurrent mixed operations through a
// live 3-shard cluster with drop/dup/corrupt/delay/reset faults on
// every client connection, then settles and reads everything back.
func TestChaosClusterPath(t *testing.T) {
	ffab := faultfab.New(clusterChaosConfig(*faultSeed))
	var connSeq atomic.Uint64
	h := newClusterHarness(t, ffab, 2, func(c precursor.Conn) precursor.Conn {
		return ffab.Wrap(c, faultfab.C2S, fmt.Sprintf("conn%d", connSeq.Add(1)))
	})

	perWorker := *chaosOps / clusterWorkers
	var wg sync.WaitGroup
	workers := make([]*clusterWorker, clusterWorkers)
	for i := range workers {
		workers[i] = newClusterWorker(h, i)
		wg.Add(1)
		go func(w *clusterWorker) {
			defer wg.Done()
			w.run(perWorker)
		}(workers[i])
	}
	wg.Wait()
	h.check(t)

	// Let late deliveries land, then read everything back.
	ffab.Quiesce(2 * time.Second)
	var vg sync.WaitGroup
	for _, w := range workers {
		vg.Add(1)
		go func(w *clusterWorker) {
			defer vg.Done()
			w.verify()
		}(w)
	}
	vg.Wait()
	h.check(t)

	st := h.cc.Stats()
	counts := ffab.Counts()
	t.Logf("chaos: ops=%d acked=%d transient=%d integrity=%d degraded=%v",
		h.ops.Load(), h.acked.Load(), h.transient.Load(), h.integrity.Load(), h.cc.Degraded())
	t.Logf("fabric: %s", ffab.Summary())
	t.Logf("cluster: puts=%d gets=%d deletes=%d errors=%d", st.Puts, st.Gets, st.Deletes, st.Errors)

	if h.acked.Load() == 0 {
		t.Fatalf("no operation ever succeeded under chaos (seed=%d)", ffab.Seed())
	}
	if *chaosOps >= 1000 {
		for _, kind := range []string{"drop", "dup", "corrupt", "delay"} {
			if counts[kind] == 0 {
				t.Errorf("fault kind %q never fired — the run did not exercise it (seed=%d)", kind, ffab.Seed())
			}
		}
	}
}

// TestChaosClusterPartition cuts one shard's client→server traffic:
// operations on its keys must fail typed (timeout, then fail-fast
// ShardError/ErrShardDown once the breaker trips), healthy shards must
// keep serving, and after heal a single probe must close the breaker
// with no acknowledged data lost.
func TestChaosClusterPartition(t *testing.T) {
	// One clean fabric per shard so exactly one shard can be cut. With a
	// clean config nothing ever dies, so no pool redial happens and the
	// dial-order mapping conn i → shard i (ConnsPerShard=1) is stable.
	fabs := make([]*faultfab.Fabric, clusterShards)
	for i := range fabs {
		fabs[i] = faultfab.New(faultfab.Config{Seed: *faultSeed})
	}
	var connSeq atomic.Uint64
	h := newClusterHarness(t, fabs[0], 1, func(c precursor.Conn) precursor.Conn {
		i := int(connSeq.Add(1)) - 1
		if i >= len(fabs) {
			t.Errorf("unexpected redial: conn %d", i)
			i = 0
		}
		return fabs[i].Wrap(c, faultfab.C2S, fmt.Sprintf("shard%d", i))
	})
	cc := h.cc

	// Pick a key on shard 0 (the victim) and one on any other shard.
	victim := h.specs[0].Addr
	var keyV, keyH string
	for i := 0; keyV == "" || keyH == ""; i++ {
		k := fmt.Sprintf("pk%d", i)
		if cc.ShardFor(k) == victim {
			if keyV == "" {
				keyV = k
			}
		} else if keyH == "" {
			keyH = k
		}
	}

	for _, k := range []string{keyV, keyH} {
		if err := cc.Put(k, []byte("v1")); err != nil {
			t.Fatalf("put %s before partition: %v", k, err)
		}
	}

	fabs[0].Partition(faultfab.C2S)

	// First op into the partition: burns the full timeout, is reported
	// unconfirmed, and trips the breaker.
	err := cc.Put(keyV, []byte("v2"))
	if !errors.Is(err, precursor.ErrTimeout) || !errors.Is(err, precursor.ErrUnconfirmed) {
		t.Fatalf("put into partition: want timeout+unconfirmed, got %v", err)
	}
	var se *precursor.ShardError
	if !errors.As(err, &se) || se.Shard != victim {
		t.Fatalf("put into partition: want ShardError{%s}, got %v", victim, err)
	}

	// Breaker open: fail-fast, no timeout burned.
	start := time.Now()
	if _, err := cc.Get(keyV); !errors.Is(err, precursor.ErrShardDown) {
		t.Fatalf("get on tripped shard: want ErrShardDown, got %v", err)
	}
	if d := time.Since(start); d > clusterOpTimeout/2 {
		t.Fatalf("breaker did not fail fast: %v", d)
	}
	if deg := cc.Degraded(); len(deg) != 1 || deg[0] != victim {
		t.Fatalf("Degraded() = %v, want [%s]", deg, victim)
	}

	// Healthy shards are unaffected.
	if v, err := cc.Get(keyH); err != nil || string(v) != "v1" {
		t.Fatalf("healthy shard during partition: %q, %v", v, err)
	}

	// Heal: the parked v2 frame flushes in order, and once the backoff
	// elapses a single probe closes the breaker.
	fabs[0].Heal(faultfab.C2S)
	deadline := time.Now().Add(5 * time.Second)
	var got []byte
	for {
		var err error
		if got, err = cc.Get(keyV); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never recovered after heal: %v (%s)", err, fabs[0].Summary())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if s := string(got); s != "v1" && s != "v2" {
		t.Fatalf("after heal Get(%s) = %q, want v1 or v2", keyV, s)
	}
	if !cc.Healthy() {
		t.Fatalf("breaker still open after successful probe: %v", cc.Degraded())
	}

	// Full service restored, nothing acknowledged was lost.
	if err := cc.Put(keyV, []byte("v3")); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	if v, err := cc.Get(keyV); err != nil || string(v) != "v3" {
		t.Fatalf("get after heal: %q, %v", v, err)
	}
	if v, err := cc.Get(keyH); err != nil || string(v) != "v1" {
		t.Fatalf("healthy shard after heal: %q, %v", v, err)
	}
}
