package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when a
// Ring (or Client) is built with VirtualNodes <= 0. 160 points per shard
// keeps the keyspace balance within a few percent for small clusters
// while the ring stays tiny (N*160 uint64s).
const DefaultVirtualNodes = 160

// Ring is a consistent-hash ring over shard names with virtual nodes.
//
// Placement depends only on the shard names (not on list order or on the
// other members), so two clients with the same membership list agree on
// every key's home, and adding a shard to an N-shard ring moves only
// ~1/(N+1) of the keyspace — the property the ring unit tests pin down.
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	shards []string // sorted, deduplicated
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// NewRing builds a ring over the given shard names with vnodes virtual
// nodes per shard (DefaultVirtualNodes when vnodes <= 0). Duplicate names
// are collapsed; an empty list yields a ring whose Lookup returns "".
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(shards))
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	r := &Ring{shards: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, s := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(s + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash is FNV-1a 64 — stable across processes and Go versions,
// unlike hash/maphash, which is the point: every client must agree —
// finished with a splitmix64 avalanche, because raw FNV-1a barely mixes
// its high bits on short, similar strings ("shard-0#17") and the ring
// orders points by the full 64-bit value.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Lookup returns the shard owning key: the first virtual node clockwise
// from the key's hash. Returns "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	i := r.lookupIndex(key)
	if i < 0 {
		return ""
	}
	return r.shards[i]
}

// lookupIndex returns the owning shard's index into Shards(), or -1.
func (r *Ring) lookupIndex(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// Shards returns the ring's membership, sorted. The slice is shared; do
// not modify it.
func (r *Ring) Shards() []string { return r.shards }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// OwnershipFractions returns each shard's exact share of the 64-bit hash
// space (arc lengths between virtual nodes), which estimates its share of
// keys under a uniform key distribution. The fractions sum to ~1.
func (r *Ring) OwnershipFractions() map[string]float64 {
	out := make(map[string]float64, len(r.shards))
	if len(r.points) == 0 {
		return out
	}
	const space = float64(1<<63) * 2 // 2^64
	arcs := make([]float64, len(r.shards))
	for i, p := range r.points {
		var arc uint64
		if i == 0 {
			// Wrap-around arc: from the last point through 2^64 to the first.
			arc = p.hash + (^r.points[len(r.points)-1].hash + 1)
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		arcs[p.shard] += float64(arc)
	}
	for i, s := range r.shards {
		out[s] = arcs[i] / space
	}
	return out
}
