package faultfab

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"precursor/internal/rdma"
)

// sinkConn records delivered frames in order; it implements just enough
// of rdma.Conn for the fabric to wrap.
type sinkConn struct {
	writes  [][]byte
	sends   [][]byte
	errored bool
	closed  bool
}

var _ rdma.Conn = (*sinkConn)(nil)

func (s *sinkConn) PostWrite(wrID uint64, rkey uint32, off uint64, data []byte, signaled bool) error {
	s.writes = append(s.writes, append([]byte(nil), data...))
	return nil
}
func (s *sinkConn) PostWriteImm(wrID uint64, rkey uint32, off uint64, data []byte, imm uint32, signaled bool) error {
	return s.PostWrite(wrID, rkey, off, data, signaled)
}
func (s *sinkConn) PostRead(wrID uint64, rkey uint32, off uint64, dst []byte) error { return nil }
func (s *sinkConn) PostAtomicCAS(wrID uint64, rkey uint32, off uint64, compare, swap uint64) error {
	return nil
}
func (s *sinkConn) PostAtomicFAA(wrID uint64, rkey uint32, off uint64, add uint64) error { return nil }
func (s *sinkConn) PostSend(wrID uint64, data []byte, signaled, inline bool) error {
	s.sends = append(s.sends, append([]byte(nil), data...))
	return nil
}
func (s *sinkConn) PostRecv(wrID uint64, buf []byte) error { return nil }
func (s *sinkConn) PollSend(max int) []rdma.Completion     { return nil }
func (s *sinkConn) PollRecv(max int) []rdma.Completion     { return nil }
func (s *sinkConn) SetError()                              { s.errored = true }
func (s *sinkConn) Close() error                           { s.closed = true; return nil }

func noisyConfig(seed uint64) Config {
	probs := ClassProbs{Drop: 0.15, Dup: 0.1, Corrupt: 0.1, Delay: 0.15, MaxDelay: time.Millisecond}
	return Config{
		Seed: seed,
		C2S:  ClassMap{ClassWrite: probs, ClassSend: probs},
		S2C:  ClassMap{ClassWrite: probs, ClassSend: probs},
	}
}

// runSchedule pushes n frames through a fresh fabric and returns the
// recorded schedule.
func runSchedule(t *testing.T, seed uint64, n int) []Event {
	t.Helper()
	fab := New(noisyConfig(seed))
	conn := fab.Wrap(&sinkConn{}, C2S, "sched")
	payload := bytes.Repeat([]byte{0xEE}, 64)
	for i := 0; i < n; i++ {
		if err := conn.PostWrite(uint64(i), 1, 0, payload, false); err != nil {
			t.Fatalf("PostWrite: %v", err)
		}
	}
	if !fab.Quiesce(2 * time.Second) {
		t.Fatalf("fabric did not quiesce")
	}
	return fab.Schedule()
}

func TestScheduleDeterministic(t *testing.T) {
	a := runSchedule(t, 42, 400)
	b := runSchedule(t, 42, 400)
	if len(a) == 0 {
		t.Fatalf("no faults drawn at 50%% total fault rate over 400 frames")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := runSchedule(t, 43, 400)
	diverged := len(a) != len(c)
	for i := 0; !diverged && i < len(a); i++ {
		diverged = a[i] != c[i]
	}
	if !diverged {
		t.Fatalf("different seeds drew identical schedules")
	}
}

func TestFaultKindsFire(t *testing.T) {
	fab := New(noisyConfig(7))
	conn := fab.Wrap(&sinkConn{}, C2S, "kinds")
	payload := bytes.Repeat([]byte{0xAB}, 32)
	for i := 0; i < 2000; i++ {
		if err := conn.PostWrite(uint64(i), 1, 0, payload, false); err != nil {
			t.Fatalf("PostWrite: %v", err)
		}
	}
	if !fab.Quiesce(2 * time.Second) {
		t.Fatalf("fabric did not quiesce")
	}
	counts := fab.Counts()
	for _, kind := range []string{"drop", "dup", "corrupt", "delay"} {
		if counts[kind] == 0 {
			t.Errorf("fault kind %q never fired over 2000 frames (%s)", kind, fab.Summary())
		}
	}
	if counts["frames"] != 2000 {
		t.Errorf("frames = %d, want 2000", counts["frames"])
	}
	if fab.TotalFaults() == 0 {
		t.Errorf("TotalFaults() = 0")
	}
}

func TestDropRedeliversUnlessHardLoss(t *testing.T) {
	// Drop-only config: every frame is "lost"; soft drops must all be
	// redelivered, hard drops never.
	for _, hard := range []bool{false, true} {
		sink := &sinkConn{}
		fab := New(Config{
			Seed:     9,
			HardLoss: hard,
			C2S:      ClassMap{ClassWrite: {Drop: 1, MaxDelay: time.Millisecond}},
		})
		conn := fab.Wrap(sink, C2S, "drop")
		for i := 0; i < 20; i++ {
			if err := conn.PostWrite(uint64(i), 1, 0, []byte{byte(i)}, false); err != nil {
				t.Fatalf("PostWrite: %v", err)
			}
		}
		if !fab.Quiesce(2 * time.Second) {
			t.Fatalf("fabric did not quiesce")
		}
		want := 20
		if hard {
			want = 0
		}
		if len(sink.writes) != want {
			t.Errorf("hardLoss=%v: %d frames delivered, want %d", hard, len(sink.writes), want)
		}
	}
}

func TestDupDeliversTwice(t *testing.T) {
	sink := &sinkConn{}
	fab := New(Config{Seed: 11, C2S: ClassMap{ClassWrite: {Dup: 1, MaxDelay: time.Millisecond}}})
	conn := fab.Wrap(sink, C2S, "dup")
	for i := 0; i < 10; i++ {
		if err := conn.PostWrite(uint64(i), 1, 0, []byte{byte(i)}, false); err != nil {
			t.Fatalf("PostWrite: %v", err)
		}
	}
	if !fab.Quiesce(2 * time.Second) {
		t.Fatalf("fabric did not quiesce")
	}
	if len(sink.writes) != 20 {
		t.Fatalf("%d frames delivered, want 20 (each duplicated)", len(sink.writes))
	}
}

func TestCorruptFlipsBits(t *testing.T) {
	sink := &sinkConn{}
	fab := New(Config{Seed: 13, C2S: ClassMap{ClassWrite: {Corrupt: 1}}})
	conn := fab.Wrap(sink, C2S, "corrupt")
	orig := bytes.Repeat([]byte{0x55}, 48)
	if err := conn.PostWrite(1, 1, 0, orig, false); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}
	if len(sink.writes) != 1 {
		t.Fatalf("%d frames delivered, want 1", len(sink.writes))
	}
	if bytes.Equal(sink.writes[0], orig) {
		t.Fatalf("corrupted frame identical to original")
	}
	if !bytes.Equal(orig, bytes.Repeat([]byte{0x55}, 48)) {
		t.Fatalf("corruption mutated the caller's buffer")
	}
}

func TestResetErrorsConn(t *testing.T) {
	sink := &sinkConn{}
	fab := New(Config{Seed: 17, C2S: ClassMap{ClassWrite: {Reset: 1}}})
	conn := fab.Wrap(sink, C2S, "reset")
	if err := conn.PostWrite(1, 1, 0, []byte{1}, false); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}
	if !sink.errored {
		t.Fatalf("reset fault did not error the wrapped conn")
	}
}

func TestPartitionHoldsThenHealsInOrder(t *testing.T) {
	sink := &sinkConn{}
	fab := New(Config{Seed: 19}) // no probabilistic faults
	conn := fab.Wrap(sink, C2S, "part")

	fab.Partition(C2S)
	for i := 0; i < 8; i++ {
		if err := conn.PostWrite(uint64(i), 1, 0, []byte{byte(i)}, false); err != nil {
			t.Fatalf("PostWrite: %v", err)
		}
	}
	if len(sink.writes) != 0 {
		t.Fatalf("partitioned direction delivered %d frames", len(sink.writes))
	}
	if !fab.Partitioned(C2S) || fab.Partitioned(S2C) {
		t.Fatalf("partition state wrong: c2s=%v s2c=%v", fab.Partitioned(C2S), fab.Partitioned(S2C))
	}

	// The opposite direction keeps flowing.
	sink2 := &sinkConn{}
	conn2 := fab.Wrap(sink2, S2C, "part-s2c")
	if err := conn2.PostWrite(1, 1, 0, []byte{0xFF}, false); err != nil {
		t.Fatalf("PostWrite s2c: %v", err)
	}
	if len(sink2.writes) != 1 {
		t.Fatalf("unpartitioned direction blocked")
	}

	fab.Heal(C2S)
	if len(sink.writes) != 8 {
		t.Fatalf("heal delivered %d frames, want 8", len(sink.writes))
	}
	for i, w := range sink.writes {
		if w[0] != byte(i) {
			t.Fatalf("held frames delivered out of order: frame %d carries %d", i, w[0])
		}
	}
}

func TestPerClassAndDirectionConfig(t *testing.T) {
	// Faults configured only for C2S sends: C2S writes and all S2C
	// traffic must pass untouched.
	fab := New(Config{Seed: 23, C2S: ClassMap{ClassSend: {Drop: 1}}, S2C: nil})
	sinkA, sinkB := &sinkConn{}, &sinkConn{}
	c2s := fab.Wrap(sinkA, C2S, "a")
	s2c := fab.Wrap(sinkB, S2C, "b")
	for i := 0; i < 50; i++ {
		if err := c2s.PostWrite(uint64(i), 1, 0, []byte{1}, false); err != nil {
			t.Fatalf("PostWrite: %v", err)
		}
		if err := c2s.PostSend(uint64(i), []byte{2}, false, false); err != nil {
			t.Fatalf("PostSend: %v", err)
		}
		if err := s2c.PostSend(uint64(i), []byte{3}, false, false); err != nil {
			t.Fatalf("PostSend s2c: %v", err)
		}
	}
	fab.Quiesce(2 * time.Second)
	if len(sinkA.writes) != 50 {
		t.Errorf("unconfigured class perturbed: %d writes delivered, want 50", len(sinkA.writes))
	}
	if len(sinkA.sends) != 50 { // soft drop: late, but all redelivered
		t.Errorf("dropped sends not redelivered: %d, want 50", len(sinkA.sends))
	}
	if len(sinkB.sends) != 50 {
		t.Errorf("unconfigured direction perturbed: %d sends delivered, want 50", len(sinkB.sends))
	}
}

func TestClosedConnRejectsAndDropsHeld(t *testing.T) {
	sink := &sinkConn{}
	fab := New(Config{Seed: 29})
	conn := fab.Wrap(sink, C2S, "closed")
	fab.Partition(C2S)
	if err := conn.PostWrite(1, 1, 0, []byte{1}, false); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sink.closed {
		t.Fatalf("Close did not propagate")
	}
	if err := conn.PostWrite(2, 1, 0, []byte{2}, false); err != rdma.ErrQPClosed {
		t.Fatalf("post after close: %v, want ErrQPClosed", err)
	}
	fab.Heal(C2S)
	if len(sink.writes) != 0 {
		t.Fatalf("held frames of a closed conn were delivered")
	}
}

func TestSummaryIncludesSeed(t *testing.T) {
	fab := New(Config{Seed: 31337})
	want := fmt.Sprintf("seed=%d", uint64(31337))
	if got := fab.Summary(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("Summary() = %q, want %q prefix", got, want)
	}
}
