// Package faultfab is a deterministic fault-injection fabric for the
// client path: it wraps rdma.Conn endpoints and perturbs the verbs
// traffic flowing through them — message drop, bounded delay (and the
// reordering it induces), duplication, bit corruption, one-way
// partitions, and connection resets — under a seeded pseudo-random
// schedule, so a failing chaos run can be replayed exactly by rerunning
// with the same seed.
//
// The threat model matches the paper's: the network between the client
// and the server NIC is untrusted (§2.3), so the client protocol must
// turn every transport misbehaviour into a clean retry or a typed
// integrity/timeout error — never a wrong answer. The chaos suites in
// internal/core and internal/cluster drive concurrent workloads through
// this fabric and check exactly that.
//
// # Semantics
//
// Faults are drawn per frame (one frame = one Post* call) from the
// per-direction, per-operation-class probabilities in Config:
//
//   - Drop: by default the frame is lost and then redelivered after a
//     retransmission delay, modelling a reliable-connected QP retrying a
//     lost packet (delivery is late, never absent). With Config.HardLoss
//     the frame is lost forever — the RC abstraction is broken, which is
//     how a one-sided ring-buffer write "disappears" under an active
//     adversary; the session wedges and the client must observe a
//     timeout, never fabricate data.
//   - Delay: the frame is held for a bounded duration and delivered
//     late; frames behind it pass, so delays double as reordering.
//   - Dup: the frame is delivered immediately and once more after a
//     bounded delay — a replayed ring write or bootstrap message.
//   - Corrupt: one to three bits of the frame payload are flipped before
//     delivery.
//   - Reset: the underlying QP is forced into the error state (both ends
//     observe it), modelling RC retry exhaustion or an adversarial
//     connection teardown.
//
// A one-way Partition(dir) holds every frame in that direction, in
// order, until Heal(dir) releases them — the ring stays coherent across
// the outage, so circuit breakers can trip during the partition and
// recover after it.
//
// # Determinism
//
// Every wrapped conn draws from its own splitmix64 stream seeded from
// (Config.Seed, label, direction), so a conn's fault schedule depends
// only on the seed, its label, and its own frame sequence — not on
// goroutine interleaving across conns. Give conns stable labels (e.g.
// "w3-s1" for worker 3, session 1) and a run's schedule is reproducible
// from the seed alone; the recorded Schedule plus Counts make the drawn
// schedule inspectable after the fact.
package faultfab

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"precursor/internal/rdma"
)

// Direction classifies which way a wrapped endpoint transmits.
type Direction uint8

// Directions. The names follow the chaos suites' usage: wrap the client
// end of a queue pair as C2S (its writes carry requests and credits) and
// the server end as S2C (its writes carry responses and credits).
const (
	C2S Direction = iota // client → server
	S2C                  // server → client
	numDirections
)

func (d Direction) String() string {
	switch d {
	case C2S:
		return "c2s"
	case S2C:
		return "s2c"
	}
	return "dir?"
}

// OpClass groups verbs so faults can target, say, ring writes but not
// the bootstrap SENDs.
type OpClass uint8

// Operation classes.
const (
	// ClassWrite covers one-sided WRITE and WRITE_WITH_IMM: ring-buffer
	// frames and flow-control credit updates.
	ClassWrite OpClass = iota
	// ClassSend covers two-sided SENDs: attestation and ring-window
	// bootstrap messages.
	ClassSend
	// ClassRead covers one-sided READs.
	ClassRead
	// ClassAtomic covers CAS and FAA.
	ClassAtomic
	numClasses
)

func (c OpClass) String() string {
	switch c {
	case ClassWrite:
		return "write"
	case ClassSend:
		return "send"
	case ClassRead:
		return "read"
	case ClassAtomic:
		return "atomic"
	}
	return "class?"
}

// FaultKind names an injected fault in the recorded schedule.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultDrop
	FaultDelay
	FaultDup
	FaultCorrupt
	FaultReset
	FaultHold // held by a one-way partition
	numFaultKinds
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	case FaultCorrupt:
		return "corrupt"
	case FaultReset:
		return "reset"
	case FaultHold:
		return "hold"
	}
	return "fault?"
}

// ClassProbs are the per-frame fault probabilities for one operation
// class in one direction. The probabilities are evaluated cumulatively
// in field order (Drop, Dup, Corrupt, Delay, Reset), so their sum must
// not exceed 1.
type ClassProbs struct {
	Drop    float64
	Dup     float64
	Corrupt float64
	Delay   float64
	Reset   float64
	// MaxDelay bounds injected delays, duplicate redelivery, and the
	// drop-retransmission penalty (default 5ms).
	MaxDelay time.Duration
}

func (p ClassProbs) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Millisecond
	}
	return p.MaxDelay
}

// ClassMap assigns fault probabilities per operation class; classes
// absent from the map pass traffic through untouched.
type ClassMap map[OpClass]ClassProbs

// Config parameterizes a fault fabric.
type Config struct {
	// Seed roots every conn's pseudo-random fault stream. A failing
	// chaos run reports its seed; rerunning with the same seed (and the
	// same conn labels) redraws the identical fault schedule.
	Seed uint64
	// HardLoss makes Drop permanent instead of retransmit-late. See the
	// package comment.
	HardLoss bool
	// C2S and S2C configure each direction independently (one-way fault
	// asymmetry is the point: a lossy response path with a clean request
	// path, or vice versa).
	C2S, S2C ClassMap
	// OnFault, when set, is called synchronously for every injected
	// fault (never for clean frames) — the hook the tracing layer uses
	// to annotate operation spans with the injections that overlapped
	// them (e.g. obs.Tracer.NoteFault). It runs on the faulting frame's
	// delivery goroutine and must be fast and non-blocking.
	OnFault func(Event)
}

// Event is one recorded fault decision.
type Event struct {
	Label string        // wrapped conn label
	Dir   Direction     //
	Class OpClass       //
	Frame uint64        // per-conn frame sequence number
	Kind  FaultKind     //
	Delay time.Duration // for FaultDrop/FaultDelay/FaultDup: the injected lateness
}

func (e Event) String() string {
	return fmt.Sprintf("%s/%s %s#%d %s+%v", e.Label, e.Dir, e.Class, e.Frame, e.Kind, e.Delay)
}

// maxSchedule bounds the retained event log; counts are always exact.
const maxSchedule = 8192

// Fabric owns the fault configuration, the partition switches, and the
// recorded schedule for a set of wrapped conns.
type Fabric struct {
	cfg Config

	mu          sync.Mutex
	conns       []*Conn
	nconns      int
	partitioned [numDirections]bool
	events      []Event
	counts      [numFaultKinds]uint64
	frames      uint64
	pending     int // scheduled late deliveries not yet fired
}

// New creates a fault fabric with the given configuration.
func New(cfg Config) *Fabric {
	return &Fabric{cfg: cfg}
}

// Seed returns the root seed, for failure messages ("-faultseed=N").
func (f *Fabric) Seed() uint64 { return f.cfg.Seed }

// Wrap interposes the fabric on conn, transmitting in direction dir.
// label names the conn in the recorded schedule and keys its private
// fault stream; pass a stable label for reproducible schedules (an
// empty label is assigned "conn-N" in wrap order).
func (f *Fabric) Wrap(inner rdma.Conn, dir Direction, label string) *Conn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nconns++
	if label == "" {
		label = fmt.Sprintf("conn-%d", f.nconns)
	}
	probs := f.cfg.C2S
	if dir == S2C {
		probs = f.cfg.S2C
	}
	c := &Conn{
		fab:   f,
		inner: inner,
		dir:   dir,
		label: label,
		probs: probs,
		rng:   mix(mix(f.cfg.Seed^fnv64(label)) ^ uint64(dir)),
	}
	f.conns = append(f.conns, c)
	return c
}

// Partition blocks the given direction: every frame transmitted that way
// is held, in per-conn order, until Heal. One-sided by design — the
// opposite direction keeps flowing.
func (f *Fabric) Partition(dir Direction) {
	f.mu.Lock()
	f.partitioned[dir] = true
	f.mu.Unlock()
}

// Heal reopens the direction and delivers every held frame in order.
func (f *Fabric) Heal(dir Direction) {
	f.mu.Lock()
	f.partitioned[dir] = false
	conns := append([]*Conn(nil), f.conns...)
	f.mu.Unlock()
	for _, c := range conns {
		if c.dir == dir {
			c.flushHeld()
		}
	}
}

// Partitioned reports whether the direction is currently blocked.
func (f *Fabric) Partitioned(dir Direction) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned[dir]
}

// Counts returns the number of injected faults by kind name, plus the
// total frame count under "frames".
func (f *Fabric) Counts() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]uint64{"frames": f.frames}
	for k := FaultKind(1); k < numFaultKinds; k++ {
		out[k.String()] = f.counts[k]
	}
	return out
}

// TotalFaults returns the number of frames that drew any fault.
func (f *Fabric) TotalFaults() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n uint64
	for k := FaultKind(1); k < numFaultKinds; k++ {
		n += f.counts[k]
	}
	return n
}

// Schedule returns the recorded fault events (the most recent
// maxSchedule of them), ordered by record time.
func (f *Fabric) Schedule() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Event(nil), f.events...)
}

// Summary formats the fault counts compactly for failure messages.
func (f *Fabric) Summary() string {
	counts := f.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("seed=%d", f.Seed())
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	return s
}

// Quiesce waits until no late deliveries are outstanding (or the timeout
// expires), so a test can settle the network before inspecting state.
// It returns true if the fabric went idle.
func (f *Fabric) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.Lock()
		idle := f.pending == 0
		f.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (f *Fabric) record(e Event) {
	f.mu.Lock()
	f.frames++
	if e.Kind != FaultNone {
		f.counts[e.Kind]++
		if len(f.events) < maxSchedule {
			f.events = append(f.events, e)
		}
	}
	f.mu.Unlock()
	if e.Kind != FaultNone && f.cfg.OnFault != nil {
		f.cfg.OnFault(e)
	}
}

func (f *Fabric) addPending(d int) {
	f.mu.Lock()
	f.pending += d
	f.mu.Unlock()
}

// splitmix64: tiny, seedable, and stable across platforms — exactly what
// a replayable schedule needs (math/rand/v2 would work but ties the
// schedule to its algorithm choices).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
