package faultfab

import (
	"sync"
	"time"

	"precursor/internal/rdma"
)

// Conn is a fault-injecting rdma.Conn: every outbound verb is run
// through the fabric's seeded fault schedule before (maybe, eventually,
// possibly twice, possibly mangled) reaching the wrapped conn. Inbound
// surfaces — PostRecv, PollSend, PollRecv — pass straight through:
// faults on the opposite flow are injected by wrapping the peer
// endpoint with the opposite Direction.
type Conn struct {
	fab   *Fabric
	inner rdma.Conn
	dir   Direction
	label string
	probs ClassMap

	mu     sync.Mutex
	rng    uint64
	frame  uint64
	held   []heldFrame // frames parked by a one-way partition, in order
	closed bool
}

type heldFrame struct {
	deliver func()
}

var _ rdma.Conn = (*Conn)(nil)

// Inner returns the wrapped conn.
func (c *Conn) Inner() rdma.Conn { return c.inner }

// Label returns the conn's schedule label.
func (c *Conn) Label() string { return c.label }

// next draws the next pseudo-random word from this conn's stream.
// Callers hold c.mu.
func (c *Conn) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// nextFloat draws uniformly from [0, 1).
func (c *Conn) nextFloat() float64 {
	return float64(c.next()>>11) / (1 << 53)
}

// nextDelay draws a delivery lateness in (0, max].
func (c *Conn) nextDelay(max time.Duration) time.Duration {
	return 1 + time.Duration(c.next()%uint64(max))
}

// post is the single fault point: it draws this frame's fate and either
// delivers now, delivers late, delivers twice, delivers mangled, drops,
// or resets the connection. data may be nil for payload-free verbs
// (reads, atomics), which restricts the fault menu to delay/drop/reset.
func (c *Conn) post(class OpClass, data []byte, deliver func(d []byte) error) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return rdma.ErrQPClosed
	}
	c.frame++
	ev := Event{Label: c.label, Dir: c.dir, Class: class, Frame: c.frame}

	if c.fab.Partitioned(c.dir) {
		// One-way partition: park the frame, in order, until Heal.
		cp := cloneBytes(data)
		c.held = append(c.held, heldFrame{deliver: func() { _ = deliver(cp) }})
		c.mu.Unlock()
		ev.Kind = FaultHold
		c.fab.record(ev)
		return nil
	}

	probs, faulty := c.probs[class]
	if !faulty {
		c.mu.Unlock()
		c.fab.record(ev)
		return deliver(data)
	}

	u := c.nextFloat()
	maxDelay := probs.maxDelay()
	switch {
	case u < probs.Drop:
		ev.Kind = FaultDrop
		if c.fab.cfg.HardLoss {
			// The frame is gone. The initiator believes it sent; only a
			// higher-layer timeout can notice.
			c.mu.Unlock()
			c.fab.record(ev)
			return nil
		}
		// RC retransmission: the "lost" packet is redelivered late — at
		// least one full delay bound, up to two.
		ev.Delay = maxDelay + c.nextDelay(maxDelay)
		cp := cloneBytes(data)
		c.mu.Unlock()
		c.fab.record(ev)
		c.scheduleLate(ev.Delay, func() { _ = deliver(cp) })
		return nil

	case u < probs.Drop+probs.Dup && data != nil:
		ev.Kind = FaultDup
		ev.Delay = c.nextDelay(maxDelay)
		cp := cloneBytes(data)
		c.mu.Unlock()
		c.fab.record(ev)
		// Original now, replay later.
		err := deliver(data)
		c.scheduleLate(ev.Delay, func() { _ = deliver(cp) })
		return err

	case u < probs.Drop+probs.Dup+probs.Corrupt && len(data) > 0:
		ev.Kind = FaultCorrupt
		cp := cloneBytes(data)
		flips := 1 + int(c.next()%3)
		for i := 0; i < flips; i++ {
			bit := int(c.next() % uint64(len(cp)*8))
			cp[bit/8] ^= 1 << (bit % 8)
		}
		c.mu.Unlock()
		c.fab.record(ev)
		return deliver(cp)

	case u < probs.Drop+probs.Dup+probs.Corrupt+probs.Delay:
		ev.Kind = FaultDelay
		ev.Delay = c.nextDelay(maxDelay)
		cp := cloneBytes(data)
		c.mu.Unlock()
		c.fab.record(ev)
		c.scheduleLate(ev.Delay, func() { _ = deliver(cp) })
		return nil

	case u < probs.Drop+probs.Dup+probs.Corrupt+probs.Delay+probs.Reset:
		ev.Kind = FaultReset
		c.mu.Unlock()
		c.fab.record(ev)
		// RC retry exhaustion / adversarial teardown: both ends observe
		// the error state, outstanding receives flush.
		c.inner.SetError()
		return nil

	default:
		c.mu.Unlock()
		c.fab.record(ev)
		return deliver(data)
	}
}

// scheduleLate fires deliver after d, unless the conn has closed; if the
// direction is partitioned by then, the frame joins the held queue.
func (c *Conn) scheduleLate(d time.Duration, deliver func()) {
	c.fab.addPending(1)
	time.AfterFunc(d, func() {
		defer c.fab.addPending(-1)
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.fab.Partitioned(c.dir) {
			c.held = append(c.held, heldFrame{deliver: deliver})
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		deliver()
	})
}

// flushHeld delivers every parked frame in order (called by Heal).
func (c *Conn) flushHeld() {
	c.mu.Lock()
	held := c.held
	c.held = nil
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	for _, h := range held {
		h.deliver()
	}
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// PostWrite implements rdma.Conn.
func (c *Conn) PostWrite(wrID uint64, rkey uint32, off uint64, data []byte, signaled bool) error {
	return c.post(ClassWrite, data, func(d []byte) error {
		return c.inner.PostWrite(wrID, rkey, off, d, signaled)
	})
}

// PostWriteImm implements rdma.Conn.
func (c *Conn) PostWriteImm(wrID uint64, rkey uint32, off uint64, data []byte, imm uint32, signaled bool) error {
	return c.post(ClassWrite, data, func(d []byte) error {
		return c.inner.PostWriteImm(wrID, rkey, off, d, imm, signaled)
	})
}

// PostRead implements rdma.Conn. Reads carry no outbound payload, so
// only delay, drop and reset apply.
func (c *Conn) PostRead(wrID uint64, rkey uint32, off uint64, dst []byte) error {
	return c.post(ClassRead, nil, func([]byte) error {
		return c.inner.PostRead(wrID, rkey, off, dst)
	})
}

// PostAtomicCAS implements rdma.Conn.
func (c *Conn) PostAtomicCAS(wrID uint64, rkey uint32, off uint64, compare, swap uint64) error {
	return c.post(ClassAtomic, nil, func([]byte) error {
		return c.inner.PostAtomicCAS(wrID, rkey, off, compare, swap)
	})
}

// PostAtomicFAA implements rdma.Conn.
func (c *Conn) PostAtomicFAA(wrID uint64, rkey uint32, off uint64, add uint64) error {
	return c.post(ClassAtomic, nil, func([]byte) error {
		return c.inner.PostAtomicFAA(wrID, rkey, off, add)
	})
}

// PostSend implements rdma.Conn.
func (c *Conn) PostSend(wrID uint64, data []byte, signaled, inline bool) error {
	return c.post(ClassSend, data, func(d []byte) error {
		return c.inner.PostSend(wrID, d, signaled, inline)
	})
}

// PostRecv implements rdma.Conn (pass-through; inbound faults are the
// peer wrapper's job).
func (c *Conn) PostRecv(wrID uint64, buf []byte) error { return c.inner.PostRecv(wrID, buf) }

// PollSend implements rdma.Conn (pass-through).
func (c *Conn) PollSend(max int) []rdma.Completion { return c.inner.PollSend(max) }

// PollRecv implements rdma.Conn (pass-through).
func (c *Conn) PollRecv(max int) []rdma.Completion { return c.inner.PollRecv(max) }

// SetError implements rdma.Conn (pass-through).
func (c *Conn) SetError() { c.inner.SetError() }

// Close implements rdma.Conn: parked and late frames die with the conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.held = nil
	c.mu.Unlock()
	return c.inner.Close()
}
