package ycsb

import (
	"errors"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() *Generator {
		g, err := NewGenerator(GeneratorConfig{
			Workload: WorkloadA, Records: 1000, ValueSize: 32, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Read != ob.Read || oa.Key != ob.Key {
			t.Fatalf("op %d diverged", i)
		}
	}
}

func TestGeneratorMixRatio(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Workload: WorkloadB, Records: 1000, ValueSize: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Read {
			reads++
		}
	}
	ratio := float64(reads) / n
	if math.Abs(ratio-0.95) > 0.01 {
		t.Errorf("read ratio = %.3f, want 0.95", ratio)
	}
}

func TestGeneratorKeysInRange(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Workload: WorkloadC, Records: 50, ValueSize: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		key := g.Next().Key
		if !strings.HasPrefix(key, "user") {
			t.Fatalf("bad key %q", key)
		}
		var idx int
		if _, err := fmtSscanf(key, &idx); err != nil || idx < 0 || idx >= 50 {
			t.Fatalf("key %q out of range", key)
		}
	}
}

func fmtSscanf(key string, idx *int) (int, error) {
	var n int
	for _, c := range key[4:] {
		if c < '0' || c > '9' {
			return 0, errors.New("non-digit")
		}
		n = n*10 + int(c-'0')
	}
	*idx = n
	return 1, nil
}

// TestZipfianSkew: the hottest key must be drawn far more often than the
// uniform expectation, and all draws stay in range.
func TestZipfianSkew(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Workload: WorkloadC, Records: 1000, ValueSize: 8,
		Dist: Zipfian, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniform := n / 1000
	if maxCount < 5*uniform {
		t.Errorf("hottest key drawn %d times, uniform expectation %d — not skewed", maxCount, uniform)
	}
}

func TestUniformCoverage(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Workload: WorkloadC, Records: 100, ValueSize: 8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		seen[g.Next().Key] = true
	}
	if len(seen) < 100 {
		t.Errorf("uniform draw covered %d/100 keys", len(seen))
	}
}

// mapStore is an in-memory Store for runner tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), value...)
	return nil
}

func (s *mapStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

func TestLoadPhase(t *testing.T) {
	s := newMapStore()
	if err := Load(s, 500, 32, 1); err != nil {
		t.Fatal(err)
	}
	if len(s.m) != 500 {
		t.Errorf("loaded %d records", len(s.m))
	}
	v, err := s.Get(Key(499))
	if err != nil || len(v) != 32 {
		t.Errorf("record 499: %d bytes, %v", len(v), err)
	}
}

func TestRunnerCountsAndRatio(t *testing.T) {
	shared := newMapStore()
	if err := Load(shared, 200, 16, 1); err != nil {
		t.Fatal(err)
	}
	report, err := Run(func(i int) (Store, error) { return shared, nil }, RunnerConfig{
		Workload: WorkloadA, Records: 200, ValueSize: 16,
		Clients: 4, OpsPerClient: 2000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ops != 4*2000 {
		t.Errorf("ops = %d", report.Ops)
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d", report.Errors)
	}
	ratio := float64(report.ReadOps) / float64(report.Ops)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("read ratio = %.3f", ratio)
	}
	if report.Kops <= 0 || report.Latency.Count() == 0 {
		t.Errorf("report incomplete: %+v", report)
	}
}

func TestRunnerNotFoundTolerance(t *testing.T) {
	empty := newMapStore() // nothing loaded: all reads miss
	report, err := Run(func(i int) (Store, error) { return empty, nil }, RunnerConfig{
		Workload: WorkloadC, Records: 100, ValueSize: 8,
		Clients: 2, OpsPerClient: 100, Seed: 1,
		NotFoundOK: true, IsNotFound: func(err error) bool { return errors.Is(err, ErrNotFound) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Errorf("not-found reads counted as errors: %d", report.Errors)
	}
	// Without tolerance they are errors.
	report, err = Run(func(i int) (Store, error) { return empty, nil }, RunnerConfig{
		Workload: WorkloadC, Records: 100, ValueSize: 8,
		Clients: 1, OpsPerClient: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 50 {
		t.Errorf("errors = %d, want 50", report.Errors)
	}
}

func TestRunnerWarmupExcluded(t *testing.T) {
	shared := newMapStore()
	if err := Load(shared, 50, 8, 1); err != nil {
		t.Fatal(err)
	}
	report, err := Run(func(i int) (Store, error) { return shared, nil }, RunnerConfig{
		Workload: WorkloadC, Records: 50, ValueSize: 8,
		Clients: 1, OpsPerClient: 100, WarmupOps: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ops != 100 {
		t.Errorf("measured ops = %d, want 100 (warmup excluded)", report.Ops)
	}
}

// TestZipfThetaSweep: raising θ must concentrate more mass on the hot
// set, across both the Gray-approximation path (θ<1) and the
// rejection-generator path (θ>1) — the sweep -bench-skew runs.
func TestZipfThetaSweep(t *testing.T) {
	hotShare := func(theta float64) float64 {
		g, err := NewGenerator(GeneratorConfig{
			Workload: WorkloadC, Records: 2000, ValueSize: 8,
			Dist: Zipfian, ZipfTheta: theta, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		const n = 40000
		for i := 0; i < n; i++ {
			counts[g.Next().Key]++
		}
		// Share of traffic on the 10 hottest keys.
		top := make([]int, 0, len(counts))
		for _, c := range counts {
			top = append(top, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(top)))
		sum := 0
		for i := 0; i < 10 && i < len(top); i++ {
			sum += top[i]
		}
		return float64(sum) / n
	}
	s06, s09, s12 := hotShare(0.6), hotShare(0.9), hotShare(1.2)
	if !(s06 < s09 && s09 < s12) {
		t.Errorf("top-10 share not monotone in θ: 0.6→%.3f 0.9→%.3f 1.2→%.3f", s06, s09, s12)
	}
	if s12 < 0.5 {
		t.Errorf("θ=1.2 top-10 share = %.3f, want a majority of traffic on the hot set", s12)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{Records: 0}); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Records: 10, ValueSize: -1}); err == nil {
		t.Error("negative value size accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Records: 10, Dist: Zipfian, ZipfTheta: 1}); err == nil {
		t.Error("theta == 1 accepted (singular for both generator paths)")
	}
	if _, err := NewGenerator(GeneratorConfig{Records: 10, Dist: Zipfian, ZipfTheta: -0.5}); err == nil {
		t.Error("negative theta accepted")
	}
}
