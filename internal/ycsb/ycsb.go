// Package ycsb implements the YCSB benchmark (Cooper et al., SoCC '10)
// workloads the evaluation drives the stores with (§5.1): uniform (and
// zipfian) request distributions, the standard read/update mixes, a warm-up
// loading phase, and a closed-loop multi-client runner.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Workload is a YCSB operation mix.
type Workload struct {
	Name      string
	ReadRatio float64 // remainder are updates
}

// The paper's four workloads (§5.2).
var (
	// WorkloadA is the update-heavy mix: 50 % reads, 50 % updates.
	WorkloadA = Workload{Name: "A-update-heavy", ReadRatio: 0.50}
	// WorkloadB is read-mostly: 95 % reads.
	WorkloadB = Workload{Name: "B-read-mostly", ReadRatio: 0.95}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C-read-only", ReadRatio: 1.0}
	// UpdateMostly is the paper's 5 % read / 95 % update mix.
	UpdateMostly = Workload{Name: "update-mostly", ReadRatio: 0.05}
)

// Distribution selects how keys are drawn.
type Distribution int

// Request distributions.
const (
	// Uniform draws every record equally often — the paper's choice.
	Uniform Distribution = iota + 1
	// Zipfian draws hot records more often (YCSB's default skew).
	Zipfian
)

// Op is one generated operation.
type Op struct {
	Read  bool
	Key   string
	Value []byte // set for updates
}

// Generator produces a deterministic operation stream. Each client should
// own one Generator (they are not safe for concurrent use).
type Generator struct {
	workload  Workload
	records   int
	valueSize int
	dist      Distribution
	rng       *rand.Rand
	zipf      *zipfGen
	valueBuf  []byte
}

// DefaultZipfTheta is YCSB's standard zipfian skew constant, used
// when GeneratorConfig.ZipfTheta is zero.
const DefaultZipfTheta = 0.99

// GeneratorConfig configures a Generator.
type GeneratorConfig struct {
	Workload  Workload
	Records   int
	ValueSize int
	Dist      Distribution
	Seed      int64
	// ZipfTheta sets the zipfian skew exponent θ (DefaultZipfTheta
	// when 0; only meaningful with Dist == Zipfian). θ in (0,1) uses
	// YCSB's scrambled-zipfian approximation; θ > 1 — heavier skew
	// than the approximation is valid for — uses the rejection-based
	// generator, with the same rank scrambling. θ == 1 exactly is
	// rejected (both formulations are singular there).
	ZipfTheta float64
}

// NewGenerator creates a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: records must be positive")
	}
	if cfg.ValueSize < 0 {
		return nil, fmt.Errorf("ycsb: negative value size")
	}
	if cfg.Dist == 0 {
		cfg.Dist = Uniform
	}
	g := &Generator{
		workload:  cfg.Workload,
		records:   cfg.Records,
		valueSize: cfg.ValueSize,
		dist:      cfg.Dist,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		valueBuf:  make([]byte, cfg.ValueSize),
	}
	if cfg.Dist == Zipfian {
		theta := cfg.ZipfTheta
		if theta == 0 {
			theta = DefaultZipfTheta
		}
		if theta < 0 || theta == 1 {
			return nil, fmt.Errorf("ycsb: zipf theta must be positive and != 1, got %v", theta)
		}
		g.zipf = newZipfGen(cfg.Records, theta, g.rng)
	}
	return g, nil
}

// Key formats record i as its YCSB key.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// Next produces the next operation. The returned value buffer is reused
// across calls.
func (g *Generator) Next() Op {
	var idx int
	if g.dist == Zipfian {
		idx = g.zipf.next()
	} else {
		idx = g.rng.Intn(g.records)
	}
	op := Op{Key: Key(idx)}
	if g.rng.Float64() < g.workload.ReadRatio {
		op.Read = true
		return op
	}
	g.rng.Read(g.valueBuf)
	op.Value = g.valueBuf
	return op
}

// zipfGen is the YCSB zipfian generator over [0, n): items are permuted by
// a multiplicative hash so the hot set is spread across the key space,
// matching YCSB's scrambled zipfian. For theta in (0,1) it uses Gray's
// closed-form approximation (YCSB's own); for theta > 1 — where that
// approximation is not valid — it delegates rank drawing to math/rand's
// rejection-based Zipf generator and scrambles the same way.
type zipfGen struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
	heavy *rand.Zipf // theta > 1 path
}

func newZipfGen(n int, theta float64, rng *rand.Rand) *zipfGen {
	z := &zipfGen{n: n, theta: theta, rng: rng}
	if theta > 1 {
		z.heavy = rand.NewZipf(rng, theta, 1, uint64(n-1))
		return z
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) next() int {
	if z.heavy != nil {
		rank := int(z.heavy.Uint64())
		return int(uint64(rank) * 0x9E3779B97F4A7C15 % uint64(z.n))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	// Scramble so consecutive ranks are not adjacent keys.
	return int(uint64(rank) * 0x9E3779B97F4A7C15 % uint64(z.n))
}
