package ycsb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"precursor/internal/hist"
)

// Store is the key-value surface the runner drives. Precursor, the
// server-encryption variant and ShieldStore clients all satisfy it.
type Store interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
}

// ErrNotFound lets the runner tolerate reads of not-yet-loaded keys when
// the caller's store maps its own not-found error onto it.
var ErrNotFound = errors.New("ycsb: key not found")

// Report aggregates a run's measurements.
type Report struct {
	Workload  string
	Clients   int
	Ops       uint64
	Errors    uint64
	Duration  time.Duration
	Kops      float64
	Latency   *hist.Histogram
	ReadOps   uint64
	UpdateOps uint64
}

// String renders the standard result row.
func (r Report) String() string {
	return fmt.Sprintf("%-16s clients=%-3d ops=%-8d kops=%-8.1f %s",
		r.Workload, r.Clients, r.Ops, r.Kops, r.Latency.Summary())
}

// RunnerConfig configures a closed-loop run.
type RunnerConfig struct {
	Workload  Workload
	Records   int
	ValueSize int
	Dist      Distribution
	// ZipfTheta sets the zipfian skew exponent (see GeneratorConfig).
	ZipfTheta float64
	Clients   int
	// OpsPerClient bounds each client's operations (0 = use Duration).
	OpsPerClient int
	// Duration bounds the run in wall-clock time when OpsPerClient is 0.
	Duration time.Duration
	Seed     int64
	// NotFoundOK ignores not-found read errors (sparse preload).
	NotFoundOK bool
	IsNotFound func(error) bool
	WarmupOps  int // per-client unmeasured leading ops
}

// Load performs the warm-up phase: inserting records through the store
// (600 k entries in the paper's throughput experiments).
func Load(s Store, records, valueSize int, seed int64) error {
	g, err := NewGenerator(GeneratorConfig{
		Workload: Workload{ReadRatio: 0}, Records: records,
		ValueSize: valueSize, Seed: seed,
	})
	if err != nil {
		return err
	}
	for i := 0; i < records; i++ {
		g.rng.Read(g.valueBuf)
		if err := s.Put(Key(i), g.valueBuf); err != nil {
			return fmt.Errorf("load record %d: %w", i, err)
		}
	}
	return nil
}

// RunShared drives a single concurrency-safe store with cfg.Clients
// closed-loop workers. This is the cluster path: a cluster client whose
// per-shard backends are connection pools multiplexes all workers, and
// the store — not the runner — decides which shard each key hits.
func RunShared(s Store, cfg RunnerConfig) (Report, error) {
	return Run(func(int) (Store, error) { return s, nil }, cfg)
}

// Run drives one store per client in a closed loop and aggregates results.
// The factory is called once per client (a connection each, as in the
// paper's 50-client setup).
func Run(factory func(i int) (Store, error), cfg RunnerConfig) (Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.OpsPerClient == 0 && cfg.Duration == 0 {
		cfg.OpsPerClient = 1000
	}
	stores := make([]Store, cfg.Clients)
	for i := range stores {
		s, err := factory(i)
		if err != nil {
			return Report{}, fmt.Errorf("client %d: %w", i, err)
		}
		stores[i] = s
	}

	type clientResult struct {
		ops, errs, reads, updates uint64
		lat                       *hist.Histogram
	}
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	stopAt := time.Now().Add(cfg.Duration)

	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := NewGenerator(GeneratorConfig{
				Workload: cfg.Workload, Records: cfg.Records,
				ValueSize: cfg.ValueSize, Dist: cfg.Dist,
				ZipfTheta: cfg.ZipfTheta,
				Seed:      cfg.Seed + int64(i)*7919,
			})
			if err != nil {
				return
			}
			res := &results[i]
			res.lat = hist.New()
			for n := 0; ; n++ {
				if cfg.OpsPerClient > 0 {
					if n >= cfg.OpsPerClient+cfg.WarmupOps {
						return
					}
				} else if time.Now().After(stopAt) {
					return
				}
				op := g.Next()
				t0 := time.Now()
				var err error
				if op.Read {
					_, err = stores[i].Get(op.Key)
					if err != nil && cfg.NotFoundOK && cfg.IsNotFound != nil && cfg.IsNotFound(err) {
						err = nil
					}
				} else {
					err = stores[i].Put(op.Key, op.Value)
				}
				if n < cfg.WarmupOps {
					continue
				}
				if err != nil {
					res.errs++
					continue
				}
				res.lat.Record(time.Since(t0))
				res.ops++
				if op.Read {
					res.reads++
				} else {
					res.updates++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := Report{
		Workload: cfg.Workload.Name,
		Clients:  cfg.Clients,
		Duration: elapsed,
		Latency:  hist.New(),
	}
	for i := range results {
		report.Ops += results[i].ops
		report.Errors += results[i].errs
		report.ReadOps += results[i].reads
		report.UpdateOps += results[i].updates
		if results[i].lat != nil {
			report.Latency.Merge(results[i].lat)
		}
	}
	report.Kops = float64(report.Ops) / elapsed.Seconds() / 1000
	return report, nil
}
