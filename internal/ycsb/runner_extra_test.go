package ycsb

import (
	"testing"
	"time"
)

// TestRunnerDurationMode bounds a run by wall-clock time.
func TestRunnerDurationMode(t *testing.T) {
	shared := newMapStore()
	if err := Load(shared, 100, 8, 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	report, err := Run(func(i int) (Store, error) { return shared, nil }, RunnerConfig{
		Workload: WorkloadC, Records: 100, ValueSize: 8,
		Clients: 2, Duration: 50 * time.Millisecond, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if report.Ops == 0 {
		t.Error("no ops in duration mode")
	}
	if elapsed < 50*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("elapsed %v for a 50ms run", elapsed)
	}
}

// TestRunnerDefaultOps: with neither bound set, a small default applies.
func TestRunnerDefaultOps(t *testing.T) {
	shared := newMapStore()
	if err := Load(shared, 10, 8, 1); err != nil {
		t.Fatal(err)
	}
	report, err := Run(func(i int) (Store, error) { return shared, nil }, RunnerConfig{
		Workload: WorkloadC, Records: 10, ValueSize: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ops != 1000 { // default OpsPerClient × default 1 client
		t.Errorf("ops = %d", report.Ops)
	}
}

// TestRunnerFactoryError propagates connection failures.
func TestRunnerFactoryError(t *testing.T) {
	_, err := Run(func(i int) (Store, error) {
		return nil, errTestFactory
	}, RunnerConfig{Workload: WorkloadC, Records: 10, Clients: 2, OpsPerClient: 5})
	if err == nil {
		t.Error("factory error swallowed")
	}
}

var errTestFactory = errNotFoundLike("factory down")

type errNotFoundLike string

func (e errNotFoundLike) Error() string { return string(e) }

// TestReportString renders without panicking and includes the workload.
func TestReportString(t *testing.T) {
	shared := newMapStore()
	if err := Load(shared, 10, 8, 1); err != nil {
		t.Fatal(err)
	}
	report, err := Run(func(i int) (Store, error) { return shared, nil }, RunnerConfig{
		Workload: WorkloadA, Records: 10, ValueSize: 8, Clients: 1, OpsPerClient: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	if len(s) == 0 || report.Workload != WorkloadA.Name {
		t.Errorf("report = %q", s)
	}
}

// TestRunShared: all client loops drive one shared store (the cluster
// path) and the aggregate counts add up.
func TestRunShared(t *testing.T) {
	shared := newMapStore()
	if err := Load(shared, 50, 8, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := RunShared(shared, RunnerConfig{
		Workload: WorkloadA, Records: 50, ValueSize: 8,
		Clients: 4, OpsPerClient: 100, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 400 {
		t.Errorf("ops = %d, want 400", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.ReadOps+rep.UpdateOps != rep.Ops {
		t.Errorf("reads+updates = %d+%d != %d", rep.ReadOps, rep.UpdateOps, rep.Ops)
	}
	if rep.Clients != 4 {
		t.Errorf("clients = %d", rep.Clients)
	}
}
