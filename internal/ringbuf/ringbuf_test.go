package ringbuf

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"precursor/internal/rdma"
)

// testRing wires a writer on devA to a ring registered on devB.
type testRing struct {
	fabric *rdma.Fabric
	ringMR *rdma.MemoryRegion
	writer *Writer
	reader *Reader
}

func newTestRing(t *testing.T, slots, slotSize, creditEvery int) *testRing {
	t.Helper()
	f := rdma.NewFabric()
	client, err := f.NewDevice("client")
	if err != nil {
		t.Fatal(err)
	}
	server, err := f.NewDevice("server")
	if err != nil {
		t.Fatal(err)
	}
	cqp, sqp := f.ConnectRC(client, server)

	ring := server.RegisterMemory(RingBytes(slots, slotSize), rdma.PermRemoteWrite)
	credit := client.RegisterMemory(CreditBytes, rdma.PermRemoteWrite)

	w, err := NewWriter(WriterConfig{
		Conn: cqp, RingRKey: ring.RKey(), Slots: slots, SlotSize: slotSize,
		Credit: credit,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(ReaderConfig{
		Ring: ring, Slots: slots, SlotSize: slotSize,
		Conn: sqp, CreditRKey: credit.RKey(), CreditEvery: creditEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testRing{fabric: f, ringMR: ring, writer: w, reader: r}
}

func TestRoundTripSingle(t *testing.T) {
	tr := newTestRing(t, 8, 256, 1)
	msg := []byte("first request")
	ok, err := tr.writer.TryWrite(msg)
	if err != nil || !ok {
		t.Fatalf("TryWrite: %v %v", ok, err)
	}
	got, ready, err := tr.reader.Poll()
	if err != nil || !ready {
		t.Fatalf("Poll: %v %v", ready, err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
	// Ring is now empty.
	if _, ready, _ := tr.reader.Poll(); ready {
		t.Error("Poll returned a second message")
	}
}

func TestFIFOOrder(t *testing.T) {
	tr := newTestRing(t, 16, 128, 1)
	for i := 0; i < 10; i++ {
		if ok, err := tr.writer.TryWrite([]byte{byte(i)}); err != nil || !ok {
			t.Fatalf("write %d: %v %v", i, ok, err)
		}
	}
	for i := 0; i < 10; i++ {
		msg, ready, err := tr.reader.Poll()
		if err != nil || !ready {
			t.Fatalf("poll %d: %v %v", i, ready, err)
		}
		if msg[0] != byte(i) {
			t.Fatalf("out of order: got %d want %d", msg[0], i)
		}
	}
}

func TestBackpressureAndCredits(t *testing.T) {
	tr := newTestRing(t, 4, 128, 1)
	// Fill the ring.
	for i := 0; i < 4; i++ {
		if ok, err := tr.writer.TryWrite([]byte{byte(i)}); err != nil || !ok {
			t.Fatalf("fill %d: %v %v", i, ok, err)
		}
	}
	// No credit left.
	if ok, err := tr.writer.TryWrite([]byte{9}); err != nil || ok {
		t.Fatalf("overfull write accepted: %v %v", ok, err)
	}
	if tr.writer.Available() != 0 {
		t.Errorf("Available = %d", tr.writer.Available())
	}
	// Consume one; credit returns (creditEvery=1 flushes immediately).
	if _, ready, err := tr.reader.Poll(); !ready || err != nil {
		t.Fatalf("poll: %v %v", ready, err)
	}
	if tr.writer.Available() != 1 {
		t.Errorf("Available after consume = %d", tr.writer.Available())
	}
	if ok, err := tr.writer.TryWrite([]byte{9}); err != nil || !ok {
		t.Fatalf("write after credit: %v %v", ok, err)
	}
}

func TestWrapAround(t *testing.T) {
	tr := newTestRing(t, 4, 128, 1)
	for round := 0; round < 25; round++ {
		msg := []byte(fmt.Sprintf("round-%02d", round))
		if ok, err := tr.writer.TryWrite(msg); err != nil || !ok {
			t.Fatalf("write %d: %v %v", round, ok, err)
		}
		got, ready, err := tr.reader.Poll()
		if err != nil || !ready {
			t.Fatalf("poll %d: %v %v", round, ready, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d: got %q", round, got)
		}
	}
}

func TestOversizedMessage(t *testing.T) {
	tr := newTestRing(t, 4, 64, 1)
	if _, err := tr.writer.TryWrite(make([]byte, 64)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("got %v", err)
	}
	if tr.writer.MaxMessage() != 64-Overhead {
		t.Errorf("MaxMessage = %d", tr.writer.MaxMessage())
	}
}

func TestEmptyMessage(t *testing.T) {
	tr := newTestRing(t, 4, 64, 1)
	if ok, err := tr.writer.TryWrite(nil); err != nil || !ok {
		t.Fatalf("TryWrite(nil): %v %v", ok, err)
	}
	msg, ready, err := tr.reader.Poll()
	if err != nil || !ready || len(msg) != 0 {
		t.Fatalf("Poll: %q %v %v", msg, ready, err)
	}
}

func TestCorruptLengthDetected(t *testing.T) {
	tr := newTestRing(t, 4, 64, 1)
	// An adversary (or rogue client, §3.9) writes garbage directly.
	tr.ringMR.SetByte(0, StartSign)
	tr.ringMR.WriteAt(1, []byte{0xff, 0xff, 0xff, 0x7f})
	if _, _, err := tr.reader.Poll(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("got %v", err)
	}
}

func TestIncompleteFrameNotDelivered(t *testing.T) {
	tr := newTestRing(t, 4, 64, 1)
	// Start sign + length but no end sign: write still in flight.
	tr.ringMR.SetByte(0, StartSign)
	tr.ringMR.WriteAt(1, []byte{5, 0, 0, 0})
	if _, ready, err := tr.reader.Poll(); ready || err != nil {
		t.Errorf("incomplete frame delivered: %v %v", ready, err)
	}
}

func TestRevokedWriterSurfacesError(t *testing.T) {
	f := rdma.NewFabric()
	client, _ := f.NewDevice("c")
	server, _ := f.NewDevice("s")
	cqp, sqp := f.ConnectRC(client, server)
	ring := server.RegisterMemory(RingBytes(4, 64), rdma.PermRemoteWrite)
	credit := client.RegisterMemory(CreditBytes, rdma.PermRemoteWrite)
	w, err := NewWriter(WriterConfig{Conn: cqp, RingRKey: ring.RKey(), Slots: 4, SlotSize: 64, Credit: credit})
	if err != nil {
		t.Fatal(err)
	}
	sqp.SetError() // server revokes the client
	if _, err := w.TryWrite([]byte("x")); err == nil {
		t.Error("write through revoked QP succeeded")
	}
}

// TestStreamQuick pushes a random message stream through a small ring with
// concurrent reader and writer and checks exact FIFO delivery.
func TestStreamQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slots := rng.Intn(7) + 2
		slotSize := 64 + rng.Intn(128)
		tr := newTestRing(t, slots, slotSize, 1)
		n := 200
		msgs := make([][]byte, n)
		for i := range msgs {
			m := make([]byte, rng.Intn(slotSize-Overhead))
			rng.Read(m)
			msgs[i] = m
		}
		var wg sync.WaitGroup
		wg.Add(1)
		errCh := make(chan error, 1)
		go func() {
			defer wg.Done()
			for _, m := range msgs {
				if err := tr.writer.Write(m); err != nil {
					errCh <- err
					return
				}
			}
		}()
		received := 0
		for received < n {
			msg, ready, err := tr.reader.Poll()
			if err != nil {
				t.Errorf("poll: %v", err)
				return false
			}
			if !ready {
				continue
			}
			if !bytes.Equal(msg, msgs[received]) {
				t.Errorf("message %d mismatch", received)
				return false
			}
			received++
		}
		wg.Wait()
		select {
		case err := <-errCh:
			t.Errorf("writer: %v", err)
			return false
		default:
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWriter(WriterConfig{Slots: 0, SlotSize: 64}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewWriter(WriterConfig{Slots: 4, SlotSize: 3}); err == nil {
		t.Error("tiny slot accepted")
	}
	if _, err := NewReader(ReaderConfig{Slots: 4, SlotSize: 64}); err == nil {
		t.Error("nil ring accepted")
	}
}
