// Package ringbuf implements the per-client circular buffers Precursor
// exchanges requests and responses through (§3.5, §3.8).
//
// Each direction is a ring of fixed-size slots living in the *receiver's*
// registered memory: clients write requests into a ring in server memory
// with one-sided RDMA WRITEs, and the server's trusted threads poll that
// memory; responses flow through a mirror-image ring in client memory.
// No doorbells, sends, or remote completions are involved — polling plain
// memory is what makes the receive path ecall-free.
//
// Every slot carries a start sign, an explicit length, and an end sign
// (the paper's start_sign/end_sign operands) so the poller can detect a
// completely written request. Flow control is credit-based: the reader
// periodically writes its cumulative consumed-count into an 8-byte credit
// counter in the writer's memory — again with a one-sided write ("these
// threads update clients about the newly available buffer slots using
// one-sided writes") — and the writer never lets sent−consumed exceed the
// ring size, so a client can compute the available space locally (§3.7).
package ringbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"precursor/internal/rdma"
)

// Framing constants.
const (
	// StartSign marks a slot whose write has begun.
	StartSign byte = 0xA5
	// EndSign marks a slot whose write is complete.
	EndSign byte = 0x5A
	// headerLen is sign(1) + length(4).
	headerLen = 5
	// Overhead is the per-slot framing cost in bytes.
	Overhead = headerLen + 1
)

// Errors returned by ring operations.
var (
	ErrTooLarge = errors.New("ringbuf: message exceeds slot capacity")
	ErrCorrupt  = errors.New("ringbuf: corrupt frame in ring slot")
	ErrRemote   = errors.New("ringbuf: remote write failed")
	ErrRingFull = errors.New("ringbuf: ring full")
)

// RingBytes returns the memory needed for a ring of slots×slotSize.
func RingBytes(slots, slotSize int) int { return slots * slotSize }

// CreditBytes is the size of a credit counter region.
const CreditBytes = 8

// Writer is the sending half of a ring: it lives on the machine that
// issues one-sided writes into the remote ring memory.
type Writer struct {
	mu          sync.Mutex
	conn        rdma.Conn
	ringRKey    uint32
	ringBase    uint64
	slots       uint64
	slotSize    int
	credit      *rdma.MemoryRegion // local; remote reader deposits consumed-count here
	sent        uint64
	signalEvery uint64
	wrID        uint64
	frame       []byte // reusable staging buffer

	stalls atomic.Uint64 // TryWrite calls that found no credit
}

// WriterConfig configures a Writer.
type WriterConfig struct {
	Conn     rdma.Conn
	RingRKey uint32
	RingBase uint64
	Slots    int
	SlotSize int
	// Credit is the local region the remote reader writes consumed counts
	// into (offset 0, 8 bytes little-endian).
	Credit *rdma.MemoryRegion
	// SignalEvery requests a send completion every N writes (selective
	// signaling, §4); 0 means every 16th.
	SignalEvery int
}

// NewWriter creates the sending half of a ring.
func NewWriter(cfg WriterConfig) (*Writer, error) {
	if cfg.Slots <= 0 || cfg.SlotSize <= Overhead {
		return nil, fmt.Errorf("ringbuf: invalid geometry %d×%d", cfg.Slots, cfg.SlotSize)
	}
	if cfg.Credit == nil || cfg.Credit.Len() < CreditBytes {
		return nil, errors.New("ringbuf: credit region missing or too small")
	}
	se := uint64(cfg.SignalEvery)
	if se == 0 {
		se = 16
	}
	return &Writer{
		conn:        cfg.Conn,
		ringRKey:    cfg.RingRKey,
		ringBase:    cfg.RingBase,
		slots:       uint64(cfg.Slots),
		slotSize:    cfg.SlotSize,
		credit:      cfg.Credit,
		signalEvery: se,
		frame:       make([]byte, cfg.SlotSize),
	}, nil
}

// MaxMessage returns the largest message the ring accepts.
func (w *Writer) MaxMessage() int { return w.slotSize - Overhead }

// Available returns the writer's current view of free slots.
func (w *Writer) Available() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.availableLocked()
}

func (w *Writer) availableLocked() int {
	consumed := w.credit.ReadUint64(0)
	inFlight := w.sent - consumed
	return int(w.slots - inFlight)
}

// TryWrite attempts to place msg into the next slot. It returns false —
// without blocking — when the ring has no credit.
func (w *Writer) TryWrite(msg []byte) (bool, error) {
	if len(msg) > w.MaxMessage() {
		return false, ErrTooLarge
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.availableLocked() <= 0 {
		w.stalls.Add(1)
		return false, nil
	}
	slot := w.sent % w.slots
	off := w.ringBase + slot*uint64(w.slotSize)

	frame := w.frame[:headerLen+len(msg)+1]
	frame[0] = StartSign
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(msg)))
	copy(frame[headerLen:], msg)
	frame[headerLen+len(msg)] = EndSign

	w.wrID++
	signaled := w.wrID%w.signalEvery == 0
	inline := len(frame) <= rdma.InlineThreshold
	_ = inline // inline affects latency modelling only
	if err := w.conn.PostWrite(w.wrID, w.ringRKey, off, frame, signaled); err != nil {
		return false, fmt.Errorf("post write: %w", err)
	}
	// Drain completions opportunistically; an error completion means the
	// remote rejected our access (revocation, bad rkey, …).
	for _, c := range w.conn.PollSend(16) {
		if c.Status != rdma.StatusOK {
			return false, fmt.Errorf("%w: %v", ErrRemote, c.Err)
		}
	}
	w.sent++
	return true, nil
}

// Stalls counts TryWrite attempts that found the ring without credit —
// each unit is one spin of a credit-wait loop, so the counter measures
// backpressure pressure, not distinct operations. Safe to read
// concurrently with writes.
func (w *Writer) Stalls() uint64 { return w.stalls.Load() }

// Write places msg into the ring, spinning until credit is available —
// the client-side flow-control loop of §3.7.
func (w *Writer) Write(msg []byte) error {
	for {
		ok, err := w.TryWrite(msg)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// Park briefly rather than spin: flow-control credit arrives via a
		// remote write, which on the TCP fabric needs the netpoller to run.
		time.Sleep(2 * time.Microsecond)
	}
}

// WriteDeadline is Write with an upper bound on the credit wait: it
// returns ErrRingFull once the deadline passes. Shared senders (the
// server's reply pool) must use this — a peer whose ring never drains
// (wedged, vanished, or malicious) returns no credit, and TryWrite
// alone never touches the conn, so an unbounded Write would block on a
// dead ring forever.
func (w *Writer) WriteDeadline(msg []byte, deadline time.Time) error {
	for {
		ok, err := w.TryWrite(msg)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrRingFull
		}
		time.Sleep(2 * time.Microsecond)
	}
}

// Reader is the polling half of a ring: it lives on the machine whose
// memory holds the ring.
type Reader struct {
	mu          sync.Mutex
	ring        *rdma.MemoryRegion
	base        int
	slots       uint64
	slotSize    int
	conn        rdma.Conn
	creditRKey  uint32
	creditOff   uint64
	creditEvery uint64
	readIdx     uint64
	consumed    uint64
	lastFlushed uint64
	wrID        uint64
	hdr         []byte
}

// ReaderConfig configures a Reader.
type ReaderConfig struct {
	Ring     *rdma.MemoryRegion
	Base     int
	Slots    int
	SlotSize int
	// Conn+CreditRKey+CreditOff locate the writer-side credit counter this
	// reader deposits consumed counts into. Conn may be nil for loopback
	// tests (credits then cannot be returned).
	Conn       rdma.Conn
	CreditRKey uint32
	CreditOff  uint64
	// CreditEvery flushes credits after this many consumed messages
	// (default: slots/4, at least 1).
	CreditEvery int
}

// NewReader creates the polling half of a ring.
func NewReader(cfg ReaderConfig) (*Reader, error) {
	if cfg.Slots <= 0 || cfg.SlotSize <= Overhead {
		return nil, fmt.Errorf("ringbuf: invalid geometry %d×%d", cfg.Slots, cfg.SlotSize)
	}
	if cfg.Ring == nil || cfg.Ring.Len() < cfg.Base+cfg.Slots*cfg.SlotSize {
		return nil, errors.New("ringbuf: ring region missing or too small")
	}
	ce := uint64(cfg.CreditEvery)
	if ce == 0 {
		ce = uint64(cfg.Slots / 4)
		if ce == 0 {
			ce = 1
		}
	}
	return &Reader{
		ring:        cfg.Ring,
		base:        cfg.Base,
		slots:       uint64(cfg.Slots),
		slotSize:    cfg.SlotSize,
		conn:        cfg.Conn,
		creditRKey:  cfg.CreditRKey,
		creditOff:   cfg.CreditOff,
		creditEvery: ce,
		hdr:         make([]byte, headerLen),
	}, nil
}

// Poll checks the next slot for a complete frame. It returns (msg, true)
// with a copy of the message when one is ready, consuming the slot.
//
// A slot whose framing is provably mangled (impossible length) is also
// consumed — skipped, its credit returned — and reported as ErrCorrupt:
// the ring must stay in sync past garbage, or one flipped bit would
// wedge the session forever. The caller decides what corruption means;
// the reader only guarantees forward progress.
func (r *Reader) Poll() ([]byte, bool, error) {
	msg, ok, err := r.PollInto(nil)
	if !ok {
		return nil, ok, err
	}
	return msg, ok, err
}

// PollInto is Poll with a caller-provided buffer, the allocation-free
// variant hot loops use: the frame is read into buf when its capacity
// suffices (a larger buffer is allocated otherwise, sized to the slot
// so it never grows twice). The returned slice is the buffer to retain
// for the next call — when a message is ready its length is the message
// length; otherwise buf comes back unchanged. The message bytes are
// only valid until the next PollInto with the same buffer.
func (r *Reader) PollInto(buf []byte) ([]byte, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	slotOff := r.base + int(r.readIdx%r.slots)*r.slotSize
	if r.ring.ByteAt(slotOff) != StartSign {
		return buf, false, nil
	}
	if n := r.ring.ReadAt(slotOff, r.hdr); n != headerLen {
		return buf, false, nil
	}
	msgLen := int(binary.LittleEndian.Uint32(r.hdr[1:5]))
	if msgLen > r.slotSize-Overhead {
		err := fmt.Errorf("%w: length %d", ErrCorrupt, msgLen)
		return buf, false, r.consumeCorruptLocked(slotOff, err)
	}
	if r.ring.ByteAt(slotOff+headerLen+msgLen) != EndSign {
		// Write still in flight.
		return buf, false, nil
	}
	var msg []byte
	if cap(buf) >= msgLen {
		msg = buf[:msgLen]
	} else {
		msg = make([]byte, msgLen, r.slotSize)
	}
	if n := r.ring.ReadAt(slotOff+headerLen, msg); n != msgLen {
		err := fmt.Errorf("%w: short read", ErrCorrupt)
		return buf, false, r.consumeCorruptLocked(slotOff, err)
	}
	// Clear the start sign so the slot reads as free until rewritten.
	r.ring.SetByte(slotOff, 0)
	r.ring.SetByte(slotOff+headerLen+msgLen, 0)
	r.readIdx++
	r.consumed++
	if r.consumed-r.lastFlushed >= r.creditEvery {
		if err := r.flushCreditsLocked(); err != nil {
			return msg, true, err
		}
	}
	return msg, true, nil
}

// consumeCorruptLocked skips past a mangled slot: clear its start sign,
// advance, and return the slot's credit so the writer does not starve.
// The framing error is returned (joined with any credit-flush error).
func (r *Reader) consumeCorruptLocked(slotOff int, cause error) error {
	r.ring.SetByte(slotOff, 0)
	r.readIdx++
	r.consumed++
	if r.consumed-r.lastFlushed >= r.creditEvery {
		if err := r.flushCreditsLocked(); err != nil {
			return errors.Join(cause, err)
		}
	}
	return cause
}

// FlushCredits pushes the consumed count to the writer immediately.
func (r *Reader) FlushCredits() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushCreditsLocked()
}

func (r *Reader) flushCreditsLocked() error {
	if r.conn == nil {
		return nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], r.consumed)
	r.wrID++
	if err := r.conn.PostWrite(r.wrID, r.creditRKey, r.creditOff, buf[:], false); err != nil {
		return fmt.Errorf("credit write: %w", err)
	}
	r.lastFlushed = r.consumed
	return nil
}

// Consumed returns the cumulative number of messages read.
func (r *Reader) Consumed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consumed
}
