package ringbuf

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"precursor/internal/rdma"
)

// TestMultipleRingsIndependent: rings for different clients in the same
// server memory must not interfere — the per-client isolation the design
// relies on.
func TestMultipleRingsIndependent(t *testing.T) {
	f := rdma.NewFabric()
	server, err := f.NewDevice("server")
	if err != nil {
		t.Fatal(err)
	}
	const nClients = 4
	type end struct {
		writer *Writer
		reader *Reader
	}
	ends := make([]end, nClients)
	for i := range ends {
		client, err := f.NewDevice(fmt.Sprintf("client-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cq, sq := f.ConnectRC(client, server)
		ring := server.RegisterMemory(RingBytes(8, 128), rdma.PermRemoteWrite)
		credit := client.RegisterMemory(CreditBytes, rdma.PermRemoteWrite)
		w, err := NewWriter(WriterConfig{
			Conn: cq, RingRKey: ring.RKey(), Slots: 8, SlotSize: 128, Credit: credit,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(ReaderConfig{
			Ring: ring, Slots: 8, SlotSize: 128,
			Conn: sq, CreditRKey: credit.RKey(), CreditEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ends[i] = end{writer: w, reader: r}
	}

	var wg sync.WaitGroup
	for i := range ends {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				msg := []byte(fmt.Sprintf("c%d-m%d", id, n))
				if err := ends[id].writer.Write(msg); err != nil {
					t.Errorf("client %d write: %v", id, err)
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < 200; {
				msg, ready, err := ends[id].reader.Poll()
				if err != nil {
					t.Errorf("client %d poll: %v", id, err)
					return
				}
				if !ready {
					continue
				}
				want := fmt.Sprintf("c%d-m%d", id, n)
				if string(msg) != want {
					t.Errorf("ring %d: got %q want %q", id, msg, want)
					return
				}
				n++
			}
		}(i)
	}
	wg.Wait()
}

// TestCreditFlushOnDemand: FlushCredits pushes the count immediately even
// below the periodic threshold.
func TestCreditFlushOnDemand(t *testing.T) {
	tr := newTestRing(t, 16, 128, 1000 /* effectively never automatic */)
	for i := 0; i < 3; i++ {
		if ok, err := tr.writer.TryWrite([]byte{byte(i)}); err != nil || !ok {
			t.Fatal(err)
		}
		if _, ready, err := tr.reader.Poll(); !ready || err != nil {
			t.Fatal(err)
		}
	}
	// No credits returned yet (threshold 1000): writer still sees 13 free.
	if got := tr.writer.Available(); got != 16-3 {
		t.Errorf("available before flush = %d", got)
	}
	if err := tr.reader.FlushCredits(); err != nil {
		t.Fatal(err)
	}
	if got := tr.writer.Available(); got != 16 {
		t.Errorf("available after flush = %d", got)
	}
	if tr.reader.Consumed() != 3 {
		t.Errorf("consumed = %d", tr.reader.Consumed())
	}
}

// TestMaxSizedMessage exercises the exact slot boundary.
func TestMaxSizedMessage(t *testing.T) {
	tr := newTestRing(t, 4, 256, 1)
	msg := bytes.Repeat([]byte{0x7}, tr.writer.MaxMessage())
	if ok, err := tr.writer.TryWrite(msg); err != nil || !ok {
		t.Fatalf("max message rejected: %v %v", ok, err)
	}
	got, ready, err := tr.reader.Poll()
	if err != nil || !ready || !bytes.Equal(got, msg) {
		t.Fatalf("max message poll: ready=%v err=%v", ready, err)
	}
}
