package slab

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocWriteRead(t *testing.T) {
	p := New()
	ref, err := p.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if ref.Size() != 100 {
		t.Errorf("Size = %d", ref.Size())
	}
	data := bytes.Repeat([]byte{0xAB}, 100)
	if err := p.Write(ref, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := p.Read(ref)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read mismatch")
	}
}

func TestAllocSizeClasses(t *testing.T) {
	if c, err := classFor(1); err != nil || classSize(c) != 64 {
		t.Errorf("classFor(1): %d, %v", c, err)
	}
	if c, err := classFor(64); err != nil || classSize(c) != 64 {
		t.Errorf("classFor(64): %d, %v", c, err)
	}
	if c, err := classFor(65); err != nil || classSize(c) != 128 {
		t.Errorf("classFor(65): %d, %v", c, err)
	}
	if c, err := classFor(1 << 20); err != nil || classSize(c) != 1<<20 {
		t.Errorf("classFor(1MiB): %d, %v", c, err)
	}
	if _, err := classFor(1<<20 + 1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize: %v", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := New()
	a, err := p.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	p.Free(a)
	b, err := p.Alloc(120) // same class
	if err != nil {
		t.Fatal(err)
	}
	if a.chunk != b.chunk || a.off != b.off {
		t.Errorf("freed slot not reused: %+v vs %+v", a, b)
	}
	s := p.Stats()
	if s.Allocs != 2 || s.Frees != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestGrowOcallBatching: many small allocations must trigger few growth
// callbacks — the paper's "single ocall called periodically" property.
func TestGrowOcallBatching(t *testing.T) {
	var growths int
	p := New(WithGrowFunc(func(n int) error {
		growths++
		return nil
	}), WithGrowStep(1<<20))

	for i := 0; i < 10000; i++ { // 10k × 64B = 640 KiB < 1 MiB
		if _, err := p.Alloc(32); err != nil {
			t.Fatal(err)
		}
	}
	if growths != 1 {
		t.Errorf("growths = %d, want 1 for 10k small allocs", growths)
	}
}

func TestGrowFailurePropagates(t *testing.T) {
	sentinel := errors.New("ocall failed")
	p := New(WithGrowFunc(func(n int) error { return sentinel }))
	if _, err := p.Alloc(64); !errors.Is(err, sentinel) {
		t.Errorf("got %v", err)
	}
}

func TestBadRefs(t *testing.T) {
	p := New()
	if _, err := p.Read(Ref{}); !errors.Is(err, ErrBadRef) {
		t.Errorf("zero ref read: %v", err)
	}
	if err := p.Write(Ref{size: 10, chunk: 99}, []byte("x")); !errors.Is(err, ErrBadRef) {
		t.Errorf("bogus chunk: %v", err)
	}
	ref, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(ref, make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("overfull write: %v", err)
	}
}

// TestAllocationsDisjoint is the core safety property: live allocations
// must never overlap, or clients would corrupt each other's payloads.
func TestAllocationsDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New()
		type live struct {
			ref  Ref
			data []byte
		}
		var lives []live
		for i := 0; i < 300; i++ {
			if len(lives) > 0 && rng.Intn(3) == 0 {
				idx := rng.Intn(len(lives))
				p.Free(lives[idx].ref)
				lives = append(lives[:idx], lives[idx+1:]...)
				continue
			}
			n := rng.Intn(2000) + 1
			ref, err := p.Alloc(n)
			if err != nil {
				return false
			}
			data := make([]byte, n)
			rng.Read(data)
			if err := p.Write(ref, data); err != nil {
				return false
			}
			lives = append(lives, live{ref, data})
		}
		for _, l := range lives {
			got, err := p.Read(l.ref)
			if err != nil || !bytes.Equal(got, l.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pattern := bytes.Repeat([]byte{byte(id + 1)}, 256)
			for i := 0; i < 500; i++ {
				ref, err := p.Alloc(256)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				if err := p.Write(ref, pattern); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got, err := p.Read(ref)
				if err != nil || !bytes.Equal(got, pattern) {
					t.Errorf("read-back corrupted for goroutine %d", id)
					return
				}
				p.Free(ref)
			}
		}(g)
	}
	wg.Wait()
}

func TestStatsAccounting(t *testing.T) {
	p := New(WithGrowStep(1 << 16))
	refs := make([]Ref, 0, 100)
	for i := 0; i < 100; i++ {
		r, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	s := p.Stats()
	if s.BytesInUse != 100*64 {
		t.Errorf("BytesInUse = %d", s.BytesInUse)
	}
	if s.BytesReserved < s.BytesInUse {
		t.Errorf("reserved %d < in use %d", s.BytesReserved, s.BytesInUse)
	}
	for _, r := range refs {
		p.Free(r)
	}
	if s := p.Stats(); s.BytesInUse != 0 {
		t.Errorf("BytesInUse after frees = %d", s.BytesInUse)
	}
}
