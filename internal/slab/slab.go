// Package slab implements the pre-allocated untrusted payload pool the
// Precursor server stores encrypted values in.
//
// The design mirrors §3.8: instead of performing an ocall per allocation,
// the enclave hands out slots from a pool in untrusted memory that was
// pre-allocated up front, and only when the pool runs dry does it issue a
// single (batched) ocall to enlarge it. The pool uses power-of-two size
// classes with per-class free lists, so slot reuse after deletes and
// updates is O(1).
package slab

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Errors returned by the pool.
var (
	ErrTooLarge = errors.New("slab: allocation exceeds maximum slot size")
	ErrBadRef   = errors.New("slab: invalid reference")
)

const (
	// minClassShift is the smallest slot (64 B): a payload nonce plus a
	// small ciphertext plus its MAC fit without waste.
	minClassShift = 6
	// maxClassShift is the largest slot (1 MiB).
	maxClassShift = 20
	numClasses    = maxClassShift - minClassShift + 1
)

// Ref locates an allocation: the pointer the enclave hash table stores
// alongside K_operation (the "ptr" of Fig. 3).
type Ref struct {
	class uint8
	chunk uint32
	off   uint32
	size  uint32
}

// Valid reports whether the ref refers to an allocation (zero Ref is invalid).
func (r Ref) Valid() bool { return r.size > 0 }

// Size returns the logical (requested) size of the allocation.
func (r Ref) Size() int { return int(r.size) }

// Stats is a snapshot of pool usage.
type Stats struct {
	BytesReserved int64  // total untrusted memory owned by the pool
	BytesInUse    int64  // bytes in live allocations (slot-rounded)
	Allocs        uint64 // total successful allocations
	Frees         uint64
	Growths       uint64 // times GrowFunc was invoked (≈ ocall count)
}

// GrowFunc is invoked (outside the pool lock) whenever the pool must
// reserve more untrusted memory. The server wires it to a single enclave
// ocall; tests may fail it to exercise exhaustion.
type GrowFunc func(bytes int) error

// Pool is a thread-safe untrusted-memory payload pool.
type Pool struct {
	mu       sync.Mutex
	classes  [numClasses]classState
	grow     GrowFunc
	growStep int
	stats    Stats
}

type classState struct {
	chunks [][]byte // backing memory, one slot per index within a chunk
	free   []Ref
	next   Ref // bump cursor within the newest chunk; size==0 when exhausted
}

// Option configures a Pool.
type Option func(*Pool)

// WithGrowFunc sets the callback invoked when the pool reserves memory.
func WithGrowFunc(f GrowFunc) Option {
	return func(p *Pool) { p.grow = f }
}

// WithGrowStep sets the minimum bytes reserved per growth (default 1 MiB).
func WithGrowStep(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.growStep = n
		}
	}
}

// New creates a pool and pre-allocates initialBytes across no size class
// in particular — memory is reserved lazily per class, but the initial
// reservation is counted so that growth (and hence ocalls) only begins
// after it is consumed.
func New(opts ...Option) *Pool {
	p := &Pool{growStep: 1 << 20}
	for _, o := range opts {
		o(p)
	}
	return p
}

// classFor returns the size-class index for a request of n bytes.
func classFor(n int) (int, error) {
	if n <= 0 {
		n = 1
	}
	shift := bits.Len(uint(n - 1))
	if shift < minClassShift {
		shift = minClassShift
	}
	if shift > maxClassShift {
		return 0, ErrTooLarge
	}
	return shift - minClassShift, nil
}

func classSize(class int) int { return 1 << (class + minClassShift) }

// Alloc reserves a slot of at least n bytes and returns its reference.
// Zero-byte requests allocate the minimum slot (a Ref must always be
// Valid and readable).
func (p *Pool) Alloc(n int) (Ref, error) {
	if n <= 0 {
		n = 1
	}
	class, err := classFor(n)
	if err != nil {
		return Ref{}, err
	}
	p.mu.Lock()
	cs := &p.classes[class]
	// Reuse a freed slot first.
	if len(cs.free) > 0 {
		ref := cs.free[len(cs.free)-1]
		cs.free = cs.free[:len(cs.free)-1]
		ref.size = uint32(n)
		p.stats.Allocs++
		p.stats.BytesInUse += int64(classSize(class))
		p.mu.Unlock()
		return ref, nil
	}
	// Bump-allocate within the newest chunk.
	if ref, ok := p.bumpLocked(class, n); ok {
		p.mu.Unlock()
		return ref, nil
	}
	// Need more memory: grow outside the lock via the (ocall) callback.
	slot := classSize(class)
	chunkBytes := p.growStep
	if chunkBytes < slot {
		chunkBytes = slot
	}
	growFn := p.grow
	p.mu.Unlock()

	if growFn != nil {
		if err := growFn(chunkBytes); err != nil {
			return Ref{}, fmt.Errorf("slab grow: %w", err)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	cs = &p.classes[class]
	cs.chunks = append(cs.chunks, make([]byte, chunkBytes-chunkBytes%slot))
	cs.next = Ref{class: uint8(class), chunk: uint32(len(cs.chunks) - 1), off: 0, size: 1}
	p.stats.Growths++
	p.stats.BytesReserved += int64(chunkBytes - chunkBytes%slot)
	ref, ok := p.bumpLocked(class, n)
	if !ok {
		return Ref{}, ErrTooLarge // unreachable: fresh chunk always fits one slot
	}
	return ref, nil
}

func (p *Pool) bumpLocked(class, n int) (Ref, bool) {
	cs := &p.classes[class]
	if cs.next.size == 0 || len(cs.chunks) == 0 {
		return Ref{}, false
	}
	slot := classSize(class)
	chunk := cs.chunks[cs.next.chunk]
	if int(cs.next.off)+slot > len(chunk) {
		return Ref{}, false
	}
	ref := Ref{class: uint8(class), chunk: cs.next.chunk, off: cs.next.off, size: uint32(n)}
	cs.next.off += uint32(slot)
	p.stats.Allocs++
	p.stats.BytesInUse += int64(slot)
	return ref, true
}

// Free returns a slot to its class free list. Double frees are the
// caller's responsibility (the enclave owns all refs).
func (p *Pool) Free(ref Ref) {
	if !ref.Valid() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := &p.classes[ref.class]
	cs.free = append(cs.free, Ref{class: ref.class, chunk: ref.chunk, off: ref.off})
	p.stats.Frees++
	p.stats.BytesInUse -= int64(classSize(int(ref.class)))
}

// Write stores data into the slot. len(data) must not exceed the slot.
func (p *Pool) Write(ref Ref, data []byte) error {
	buf, err := p.slot(ref)
	if err != nil {
		return err
	}
	if len(data) > len(buf) {
		return ErrTooLarge
	}
	copy(buf, data)
	return nil
}

// Read returns the ref.Size() bytes stored in the slot. The returned slice
// aliases pool memory — untrusted memory an adversary may mutate, which is
// exactly the property integrity tests exercise.
func (p *Pool) Read(ref Ref) ([]byte, error) {
	buf, err := p.slot(ref)
	if err != nil {
		return nil, err
	}
	return buf[:ref.size], nil
}

func (p *Pool) slot(ref Ref) ([]byte, error) {
	if !ref.Valid() || int(ref.class) >= numClasses {
		return nil, ErrBadRef
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := &p.classes[ref.class]
	if int(ref.chunk) >= len(cs.chunks) {
		return nil, ErrBadRef
	}
	chunk := cs.chunks[ref.chunk]
	slot := classSize(int(ref.class))
	if int(ref.off)+slot > len(chunk) {
		return nil, ErrBadRef
	}
	return chunk[ref.off : int(ref.off)+slot], nil
}

// Stats returns a snapshot of pool usage.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
