package slab

import (
	"testing"
	"testing/quick"
)

// TestClassBoundariesQuick: every allocation lands in a class at least as
// large as the request, and the class function is monotone.
func TestClassBoundariesQuick(t *testing.T) {
	f := func(n uint32) bool {
		size := int(n % (1 << 20))
		if size == 0 {
			size = 1
		}
		class, err := classFor(size)
		if err != nil {
			return false
		}
		slot := classSize(class)
		if slot < size {
			return false
		}
		// Tightness: the next-smaller class (if any) must not fit.
		if class > 0 && classSize(class-1) >= size && size > 64 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestReuseAcrossClasses: frees in one class never satisfy allocations in
// another.
func TestReuseAcrossClasses(t *testing.T) {
	p := New()
	small, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p.Free(small)
	big, err := p.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if big.class == small.class {
		t.Error("1KiB allocation reused the 64B class")
	}
	// But a same-class allocation does reuse it.
	again, err := p.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if again.class != small.class || again.off != small.off {
		t.Errorf("64B slot not reused: %+v vs %+v", again, small)
	}
}

// TestZeroAndOneByteAllocations exercise the minimum class.
func TestZeroAndOneByteAllocations(t *testing.T) {
	p := New()
	for _, n := range []int{0, 1, 63, 64} {
		ref, err := p.Alloc(n)
		if err != nil {
			t.Fatalf("alloc %d: %v", n, err)
		}
		want := n
		if want == 0 {
			want = 1 // zero-byte requests take the minimum slot
		}
		if ref.Size() != want {
			t.Errorf("alloc %d: size %d", n, ref.Size())
		}
		if !ref.Valid() {
			t.Errorf("alloc %d: invalid ref", n)
		}
		if _, err := p.Read(ref); err != nil {
			t.Errorf("alloc %d: read: %v", n, err)
		}
	}
}
