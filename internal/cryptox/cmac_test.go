package cryptox

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// RFC 4493 §4 test vectors (AES-128).
var cmacKey = "2b7e151628aed2a6abf7158809cf4f3c"

var cmacVectors = []struct {
	name string
	msg  string
	tag  string
}{
	{"example1-empty", "", "bb1d6929e95937287fa37d129b756746"},
	{"example2-16B", "6bc1bee22e409f96e93d7e117393172a",
		"070a16b46b4d4144f79bdd9dd04a287c"},
	{"example3-40B",
		"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
		"dfa66747de9ae63030ca32611497c827"},
	{"example4-64B",
		"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51" +
			"30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
		"51f0bebf7e3b9d92fc49741779363cfe"},
}

func TestCMACRFC4493Vectors(t *testing.T) {
	key := mustHex(t, cmacKey)
	for _, tt := range cmacVectors {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ComputeCMAC(key, mustHex(t, tt.msg))
			if err != nil {
				t.Fatalf("ComputeCMAC: %v", err)
			}
			if gotHex := hex.EncodeToString(got); gotHex != tt.tag {
				t.Errorf("tag mismatch: got %s want %s", gotHex, tt.tag)
			}
		})
	}
}

func TestCMACSubkeys(t *testing.T) {
	c, err := NewCMAC(mustHex(t, cmacKey))
	if err != nil {
		t.Fatalf("NewCMAC: %v", err)
	}
	// RFC 4493 §4 subkey generation example.
	if got := hex.EncodeToString(c.k1[:]); got != "fbeed618357133667c85e08f7236a8de" {
		t.Errorf("K1 = %s", got)
	}
	if got := hex.EncodeToString(c.k2[:]); got != "f7ddac306ae266ccf90bc11ee46d513b" {
		t.Errorf("K2 = %s", got)
	}
}

func TestCMACKeySizes(t *testing.T) {
	for _, size := range []int{16, 24, 32} {
		if _, err := NewCMAC(make([]byte, size)); err != nil {
			t.Errorf("key size %d rejected: %v", size, err)
		}
	}
	for _, size := range []int{0, 8, 15, 17, 33} {
		if _, err := NewCMAC(make([]byte, size)); err != ErrCMACKeySize {
			t.Errorf("key size %d: got %v, want ErrCMACKeySize", size, err)
		}
	}
}

// TestCMACIncrementalEquivalence: writing a message in arbitrary chunks
// must produce the same tag as a single write.
func TestCMACIncrementalEquivalence(t *testing.T) {
	key := mustHex(t, cmacKey)
	f := func(seed int64, sizeHint uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := make([]byte, int(sizeHint)%1024)
		rng.Read(msg)

		want, err := ComputeCMAC(key, msg)
		if err != nil {
			return false
		}
		c, err := NewCMAC(key)
		if err != nil {
			return false
		}
		for off := 0; off < len(msg); {
			n := rng.Intn(33) + 1
			if off+n > len(msg) {
				n = len(msg) - off
			}
			_, _ = c.Write(msg[off : off+n])
			off += n
		}
		return bytes.Equal(c.Sum(nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCMACSumIdempotent(t *testing.T) {
	c, err := NewCMAC(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("hello precursor"))
	a := c.Sum(nil)
	b := c.Sum(nil)
	if !bytes.Equal(a, b) {
		t.Error("Sum is not idempotent")
	}
	_, _ = c.Write([]byte(" more"))
	d := c.Sum(nil)
	if bytes.Equal(a, d) {
		t.Error("tag unchanged after more data")
	}
}

func TestCMACReset(t *testing.T) {
	c, err := NewCMAC(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write([]byte("abc"))
	first := c.Sum(nil)
	c.Reset()
	_, _ = c.Write([]byte("abc"))
	second := c.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("Reset did not restore initial state")
	}
}

func TestVerifyCMAC(t *testing.T) {
	key := make([]byte, 16)
	msg := []byte("payload bytes")
	tag, err := ComputeCMAC(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyCMAC(key, msg, tag)
	if err != nil || !ok {
		t.Fatalf("valid tag rejected: ok=%v err=%v", ok, err)
	}
	tag[0] ^= 1
	ok, err = VerifyCMAC(key, msg, tag)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corrupted tag accepted")
	}
	ok, err = VerifyCMAC(key, msg, tag[:8])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("truncated tag accepted")
	}
}

// TestCMACDistinguishesMessages: flipping any single bit of a message must
// change the tag (probabilistically certain; checked on samples).
func TestCMACDistinguishesMessages(t *testing.T) {
	key := mustHex(t, cmacKey)
	msg := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	base, err := ComputeCMAC(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 15, 16, 17, 31, 32, len(msg) - 1} {
		mut := append([]byte(nil), msg...)
		mut[i] ^= 0x80
		tag, err := ComputeCMAC(key, mut)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(tag, base) {
			t.Errorf("bit flip at byte %d left tag unchanged", i)
		}
	}
}

func BenchmarkCMAC(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			key := make([]byte, 16)
			msg := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeCMAC(key, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
