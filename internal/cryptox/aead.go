package cryptox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// Transport-encryption parameters. The paper protects control data with
// AES-128 in GCM mode; the 12-byte nonce is carried alongside each message.
const (
	SessionKeySize = 16 // AES-128
	GCMNonceSize   = 12
	GCMTagSize     = 16
	// SealOverhead is the number of bytes Seal adds on top of the plaintext
	// (nonce prefix plus GCM tag).
	SealOverhead = GCMNonceSize + GCMTagSize
)

// Errors returned by the AEAD helpers.
var (
	ErrSessionKeySize = errors.New("cryptox: session key must be 16 bytes")
	ErrCiphertext     = errors.New("cryptox: ciphertext too short")
	ErrAuthFailed     = errors.New("cryptox: authentication failed")
)

// AEAD wraps AES-128-GCM with an attached random nonce, implementing the
// paper's auth-encrypt / auth-decrypt notation for the session channel
// between a client and the server enclave.
type AEAD struct {
	aead cipher.AEAD
}

// NewAEAD returns an AEAD keyed with the 16-byte session key.
func NewAEAD(key []byte) (*AEAD, error) {
	if len(key) != SessionKeySize {
		return nil, ErrSessionKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("new aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return &AEAD{aead: aead}, nil
}

// Seal authenticates and encrypts plaintext, binding additional data ad,
// and returns nonce‖ciphertext‖tag. A fresh random nonce is drawn per call,
// matching the paper's fresh-IV-per-request requirement.
func (a *AEAD) Seal(plaintext, ad []byte) ([]byte, error) {
	out := make([]byte, GCMNonceSize, GCMNonceSize+len(plaintext)+GCMTagSize)
	if _, err := rand.Read(out[:GCMNonceSize]); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	return a.aead.Seal(out, out[:GCMNonceSize], plaintext, ad), nil
}

// Open verifies and decrypts a message produced by Seal with the same
// additional data, returning the plaintext.
func (a *AEAD) Open(sealed, ad []byte) ([]byte, error) {
	if len(sealed) < GCMNonceSize+GCMTagSize {
		return nil, ErrCiphertext
	}
	pt, err := a.aead.Open(nil, sealed[:GCMNonceSize], sealed[GCMNonceSize:], ad)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return pt, nil
}

// SealAppend is Seal into a caller-provided buffer: it appends
// nonce‖ciphertext‖tag to dst and returns the extended slice,
// allocating only if dst lacks capacity — the batch hot path's
// allocation-free variant. dst must not alias plaintext.
func (a *AEAD) SealAppend(dst, plaintext, ad []byte) ([]byte, error) {
	var nonce [GCMNonceSize]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	dst = append(dst, nonce[:]...)
	return a.aead.Seal(dst, nonce[:], plaintext, ad), nil
}

// OpenAppend is Open into a caller-provided buffer: it appends the
// plaintext to dst and returns the extended slice, allocating only if
// dst lacks capacity. dst must not alias sealed.
func (a *AEAD) OpenAppend(dst, sealed, ad []byte) ([]byte, error) {
	if len(sealed) < GCMNonceSize+GCMTagSize {
		return nil, ErrCiphertext
	}
	pt, err := a.aead.Open(dst, sealed[:GCMNonceSize], sealed[GCMNonceSize:], ad)
	if err != nil {
		return nil, ErrAuthFailed
	}
	return pt, nil
}

// Overhead returns the bytes added by Seal.
func (a *AEAD) Overhead() int { return SealOverhead }
