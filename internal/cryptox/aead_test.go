package cryptox

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestAEAD(t *testing.T) *AEAD {
	t.Helper()
	a, err := NewAEAD(bytes.Repeat([]byte{0x5a}, SessionKeySize))
	if err != nil {
		t.Fatalf("NewAEAD: %v", err)
	}
	return a
}

func TestAEADRoundTrip(t *testing.T) {
	a := newTestAEAD(t)
	pt := []byte("control data: K_op || key || oid")
	ad := []byte("client-7")

	sealed, err := a.Seal(pt, ad)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if len(sealed) != len(pt)+SealOverhead {
		t.Errorf("sealed length %d, want %d", len(sealed), len(pt)+SealOverhead)
	}
	got, err := a.Open(sealed, ad)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Errorf("round trip mismatch: %q != %q", got, pt)
	}
}

func TestAEADRejectsTampering(t *testing.T) {
	a := newTestAEAD(t)
	sealed, err := a.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 1
		if _, err := a.Open(mut, nil); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("tamper at byte %d: got %v, want ErrAuthFailed", i, err)
		}
	}
}

func TestAEADRejectsWrongAD(t *testing.T) {
	a := newTestAEAD(t)
	sealed, err := a.Seal([]byte("secret"), []byte("client-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Open(sealed, []byte("client-2")); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong AD: got %v, want ErrAuthFailed", err)
	}
}

func TestAEADRejectsWrongKey(t *testing.T) {
	a := newTestAEAD(t)
	other, err := NewAEAD(bytes.Repeat([]byte{0x11}, SessionKeySize))
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := a.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Open(sealed, nil); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong key: got %v, want ErrAuthFailed", err)
	}
}

func TestAEADShortCiphertext(t *testing.T) {
	a := newTestAEAD(t)
	if _, err := a.Open(make([]byte, SealOverhead-1), nil); !errors.Is(err, ErrCiphertext) {
		t.Errorf("got %v, want ErrCiphertext", err)
	}
}

func TestAEADKeySize(t *testing.T) {
	if _, err := NewAEAD(make([]byte, 15)); !errors.Is(err, ErrSessionKeySize) {
		t.Errorf("got %v, want ErrSessionKeySize", err)
	}
}

func TestAEADFreshNonces(t *testing.T) {
	a := newTestAEAD(t)
	pt := []byte("same plaintext")
	s1, err := a.Seal(pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Seal(pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Error("two seals of the same plaintext are identical (nonce reuse)")
	}
}

func TestAEADQuickRoundTrip(t *testing.T) {
	a := newTestAEAD(t)
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := make([]byte, int(n)%2048)
		rng.Read(pt)
		ad := make([]byte, rng.Intn(64))
		rng.Read(ad)
		sealed, err := a.Seal(pt, ad)
		if err != nil {
			return false
		}
		got, err := a.Open(sealed, ad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHKDFRFC5869Case1(t *testing.T) {
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := mustHex(t, "000102030405060708090a0b0c")
	info := mustHex(t, "f0f1f2f3f4f5f6f7f8f9")
	want := "3cb25f25faacd57a90434f64d0362f2a" +
		"2d2d0a90cf1a5a4c5db02d56ecc4c5bf" +
		"34007208d5b887185865"

	okm, err := HKDF(ikm, salt, info, 42)
	if err != nil {
		t.Fatalf("HKDF: %v", err)
	}
	if got := hex.EncodeToString(okm); got != want {
		t.Errorf("OKM mismatch\n got %s\nwant %s", got, want)
	}
}

func TestHKDFNilSalt(t *testing.T) {
	okm, err := HKDF([]byte("secret"), nil, []byte("info"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(okm) != 32 {
		t.Errorf("length %d, want 32", len(okm))
	}
}

func TestHKDFTooLong(t *testing.T) {
	if _, err := HKDF([]byte("s"), nil, nil, 255*32+1); !errors.Is(err, ErrHKDFLength) {
		t.Errorf("got %v, want ErrHKDFLength", err)
	}
}

func TestHKDFDistinctInfo(t *testing.T) {
	a, err := HKDF([]byte("secret"), nil, []byte("session"), 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HKDF([]byte("secret"), nil, []byte("other"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("distinct info strings produced identical keys")
	}
}
