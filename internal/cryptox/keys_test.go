package cryptox

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewOperationKeyFresh(t *testing.T) {
	a, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two operation keys are identical")
	}
	if a == (OperationKey{}) {
		t.Error("operation key is all zero")
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	op, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	value := []byte("the value stored in untrusted memory")

	payload, mac, err := EncryptPayload(op, value)
	if err != nil {
		t.Fatalf("EncryptPayload: %v", err)
	}
	if len(payload) != Salsa20NonceSize+len(value) {
		t.Errorf("payload length %d, want %d", len(payload), Salsa20NonceSize+len(value))
	}
	if bytes.Contains(payload, value) {
		t.Error("plaintext visible in payload")
	}
	got, err := DecryptPayload(op, payload, mac)
	if err != nil {
		t.Fatalf("DecryptPayload: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Errorf("round trip mismatch: %q != %q", got, value)
	}
}

// TestPayloadTamperDetection: any modification to the untrusted payload
// must be caught by the client-side MAC check — the core integrity claim
// of the paper's client-centric scheme.
func TestPayloadTamperDetection(t *testing.T) {
	op, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	payload, mac, err := EncryptPayload(op, []byte("authentic value"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xff
		if _, err := DecryptPayload(op, mut, mac); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("payload tamper at byte %d: got %v, want ErrAuthFailed", i, err)
		}
	}
	for i := range mac {
		mut := append([]byte(nil), mac...)
		mut[i] ^= 0xff
		if _, err := DecryptPayload(op, payload, mut); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("mac tamper at byte %d: got %v, want ErrAuthFailed", i, err)
		}
	}
}

func TestPayloadWrongKeyRejected(t *testing.T) {
	op1, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	op2, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	payload, mac, err := EncryptPayload(op1, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptPayload(op2, payload, mac); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("wrong key: got %v, want ErrAuthFailed", err)
	}
}

func TestPayloadEmptyValue(t *testing.T) {
	op, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	payload, mac, err := EncryptPayload(op, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptPayload(op, payload, mac)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes, want 0", len(got))
	}
}

func TestPayloadShortPayloadRejected(t *testing.T) {
	op, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	short := make([]byte, Salsa20NonceSize-1)
	mac, err := ComputeCMAC(MACKey(op), short)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptPayload(op, short, mac); !errors.Is(err, ErrCiphertext) {
		t.Errorf("got %v, want ErrCiphertext", err)
	}
}

func TestPayloadQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		value := make([]byte, int(n)%8192)
		rng.Read(value)
		var op OperationKey
		rng.Read(op[:])

		payload, mac, err := EncryptPayload(op, value)
		if err != nil {
			return false
		}
		got, err := DecryptPayload(op, payload, mac)
		return err == nil && bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFreshKeysPerPut: encrypting the same value twice with fresh keys must
// produce unrelated ciphertexts — the traffic-analysis resistance argument
// in §3.3.
func TestFreshKeysPerPut(t *testing.T) {
	value := []byte("identical value both times")
	op1, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	op2, err := NewOperationKey()
	if err != nil {
		t.Fatal(err)
	}
	p1, m1, err := EncryptPayload(op1, value)
	if err != nil {
		t.Fatal(err)
	}
	p2, m2, err := EncryptPayload(op2, value)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p1[Salsa20NonceSize:], p2[Salsa20NonceSize:]) {
		t.Error("ciphertexts identical under fresh one-time keys")
	}
	if bytes.Equal(m1, m2) {
		t.Error("MACs identical under fresh one-time keys")
	}
}

func TestRandomBytes(t *testing.T) {
	a, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomBytes(32)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two random draws identical")
	}
	if len(a) != 32 {
		t.Errorf("length %d, want 32", len(a))
	}
}
