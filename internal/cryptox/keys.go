package cryptox

import (
	"crypto/rand"
	"fmt"
)

// OperationKeySize is the size of the one-time payload key K_operation: the
// paper uses Salsa20 with a 256-bit secret key generated per put().
const OperationKeySize = Salsa20KeySize

// OperationKey is the one-time key a client generates for each put()
// operation. It travels to the enclave inside the transport-encrypted
// control data and is returned to readers on get().
type OperationKey [OperationKeySize]byte

// NewOperationKey draws a fresh one-time key from the system CSPRNG.
func NewOperationKey() (OperationKey, error) {
	var k OperationKey
	if _, err := rand.Read(k[:]); err != nil {
		return OperationKey{}, fmt.Errorf("operation key: %w", err)
	}
	return k, nil
}

// NewNonce draws a fresh Salsa20 nonce. A fresh nonce per encryption
// prevents the block-replay attack the paper notes (§3.7).
func NewNonce() ([Salsa20NonceSize]byte, error) {
	var n [Salsa20NonceSize]byte
	if _, err := rand.Read(n[:]); err != nil {
		return n, fmt.Errorf("nonce: %w", err)
	}
	return n, nil
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return nil, fmt.Errorf("random bytes: %w", err)
	}
	return b, nil
}

// MACKey derives the AES-128-CMAC key for a payload from the operation key.
// The paper MACs the ciphertext under (a key derived from) K_operation so
// that any holder of the control data can verify payload integrity.
func MACKey(op OperationKey) []byte {
	// The first 16 bytes of the 256-bit one-time key serve as the AES-128
	// CMAC key; the key is single-use, so domain separation between the
	// stream-cipher key and the MAC key is provided by the differing
	// algorithms and the key's freshness.
	k := make([]byte, 16)
	copy(k, op[:16])
	return k
}

// EncryptPayload encrypts value under the operation key with a fresh nonce
// and MACs the ciphertext, returning nonce‖ciphertext and the 16-byte tag.
// This is the client-side "precursor" work of Algorithm 1, lines 2–4.
func EncryptPayload(op OperationKey, value []byte) (payload, mac []byte, err error) {
	nonce, err := NewNonce()
	if err != nil {
		return nil, nil, err
	}
	payload = make([]byte, Salsa20NonceSize+len(value))
	copy(payload, nonce[:])
	s, err := NewSalsa20(op[:], nonce[:])
	if err != nil {
		return nil, nil, err
	}
	if err := s.XORKeyStream(payload[Salsa20NonceSize:], value); err != nil {
		return nil, nil, err
	}
	mac, err = ComputeCMAC(MACKey(op), payload)
	if err != nil {
		return nil, nil, err
	}
	return payload, mac, nil
}

// DecryptPayload verifies the MAC over payload (nonce‖ciphertext) and
// returns the decrypted value. It is the client-side verification step of a
// get() reply: recompute the MAC under K_operation and compare (§3.7).
func DecryptPayload(op OperationKey, payload, mac []byte) ([]byte, error) {
	ok, err := VerifyCMAC(MACKey(op), payload, mac)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrAuthFailed
	}
	if len(payload) < Salsa20NonceSize {
		return nil, ErrCiphertext
	}
	return Salsa20XOR(op[:], payload[:Salsa20NonceSize], payload[Salsa20NonceSize:])
}
