package cryptox

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestSalsa20ECRYPTVector checks the first keystream block of the ECRYPT
// 256-bit Set 1 vector #0 (also used by golang.org/x/crypto/salsa20).
func TestSalsa20ECRYPTVector(t *testing.T) {
	key := mustHex(t, "8000000000000000000000000000000000000000000000000000000000000000")
	nonce := mustHex(t, "0000000000000000")
	want := mustHex(t,
		"e3be8fdd8beca2e3ea8ef9475b29a6e7003951e1097a5c38d23b7a5fad9f6844"+
			"b22c97559e2723c7cbbd3fe4fc8d9a0744652a83e72a9c461876af4d7ef1a117")

	got, err := Salsa20XOR(key, nonce, make([]byte, 64))
	if err != nil {
		t.Fatalf("Salsa20XOR: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("keystream block 0 mismatch\n got %x\nwant %x", got, want)
	}
}

func TestSalsa20RoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, Salsa20KeySize)
	nonce := bytes.Repeat([]byte{0x17}, Salsa20NonceSize)
	msg := []byte("precursor keeps payload data out of the enclave at all times")

	ct, err := Salsa20XOR(key, nonce, msg)
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}
	if bytes.Equal(ct, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt, err := Salsa20XOR(key, nonce, ct)
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("round trip mismatch: got %q want %q", pt, msg)
	}
}

func TestSalsa20KeyNonceSizes(t *testing.T) {
	if _, err := NewSalsa20(make([]byte, 31), make([]byte, 8)); err != ErrSalsa20KeySize {
		t.Errorf("short key: got %v, want ErrSalsa20KeySize", err)
	}
	if _, err := NewSalsa20(make([]byte, 32), make([]byte, 7)); err != ErrSalsa20NonceSize {
		t.Errorf("short nonce: got %v, want ErrSalsa20NonceSize", err)
	}
}

func TestSalsa20ShortDst(t *testing.T) {
	s, err := NewSalsa20(make([]byte, 32), make([]byte, 8))
	if err != nil {
		t.Fatalf("NewSalsa20: %v", err)
	}
	if err := s.XORKeyStream(make([]byte, 3), make([]byte, 4)); err != ErrShortDst {
		t.Errorf("got %v, want ErrShortDst", err)
	}
}

// TestSalsa20ChunkingEquivalence verifies that splitting the input into
// arbitrary chunks produces the same keystream as one big call.
func TestSalsa20ChunkingEquivalence(t *testing.T) {
	f := func(seed int64, sizeHint uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeHint)%4096 + 1
		msg := make([]byte, size)
		rng.Read(msg)
		key := make([]byte, Salsa20KeySize)
		nonce := make([]byte, Salsa20NonceSize)
		rng.Read(key)
		rng.Read(nonce)

		whole, err := Salsa20XOR(key, nonce, msg)
		if err != nil {
			return false
		}

		s, err := NewSalsa20(key, nonce)
		if err != nil {
			return false
		}
		chunked := make([]byte, size)
		for off := 0; off < size; {
			n := rng.Intn(97) + 1
			if off+n > size {
				n = size - off
			}
			if err := s.XORKeyStream(chunked[off:off+n], msg[off:off+n]); err != nil {
				return false
			}
			off += n
		}
		return bytes.Equal(whole, chunked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSalsa20Seek verifies Seek(n) matches skipping n bytes of keystream.
func TestSalsa20Seek(t *testing.T) {
	key := bytes.Repeat([]byte{9}, Salsa20KeySize)
	nonce := bytes.Repeat([]byte{7}, Salsa20NonceSize)

	ref, err := Salsa20XOR(key, nonce, make([]byte, 512))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, off := range []uint64{0, 1, 63, 64, 65, 127, 128, 300} {
		s, err := NewSalsa20(key, nonce)
		if err != nil {
			t.Fatalf("NewSalsa20: %v", err)
		}
		s.Seek(off)
		got := make([]byte, 512-int(off))
		if err := s.XORKeyStream(got, make([]byte, len(got))); err != nil {
			t.Fatalf("XORKeyStream: %v", err)
		}
		if !bytes.Equal(got, ref[off:]) {
			t.Errorf("Seek(%d): keystream mismatch", off)
		}
	}
}

// TestSalsa20DistinctNonces checks that different nonces yield unrelated
// keystreams (the property the fresh-IV-per-put requirement rests on).
func TestSalsa20DistinctNonces(t *testing.T) {
	key := bytes.Repeat([]byte{1}, Salsa20KeySize)
	a, err := Salsa20XOR(key, []byte("nonce001"), make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Salsa20XOR(key, []byte("nonce002"), make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("keystreams for distinct nonces are equal")
	}
}

func BenchmarkSalsa20(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			key := make([]byte, Salsa20KeySize)
			nonce := make([]byte, Salsa20NonceSize)
			src := make([]byte, size)
			dst := make([]byte, size)
			s, err := NewSalsa20(key, nonce)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.XORKeyStream(dst, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteSizeName(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return strconv.Itoa(n/1024) + "KiB"
	}
	return strconv.Itoa(n) + "B"
}
