package cryptox

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
)

// ErrHKDFLength is returned when more than 255 output blocks are requested.
var ErrHKDFLength = errors.New("cryptox: hkdf output length too large")

// HKDF derives length bytes of key material from secret, salt and info
// using HKDF-SHA-256 (RFC 5869). It is used to turn the attestation
// handshake's ECDH shared secret into the per-client session key K_session.
func HKDF(secret, salt, info []byte, length int) ([]byte, error) {
	if length > 255*sha256.Size {
		return nil, ErrHKDFLength
	}
	// Extract.
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	// Expand.
	out := make([]byte, 0, length)
	var prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{counter})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}
