package cryptox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"errors"
)

// CMACSize is the size in bytes of an AES-CMAC tag.
const CMACSize = 16

// ErrCMACKeySize is returned when the CMAC key is not a valid AES key size.
var ErrCMACKeySize = errors.New("cryptox: cmac key must be 16, 24 or 32 bytes")

// cmacRb is the constant from RFC 4493 §2.3 for 128-bit block ciphers.
const cmacRb = 0x87

// CMAC implements AES-CMAC per RFC 4493. It is a hash.Hash-like incremental
// MAC; construct instances with NewCMAC. A CMAC value must not be used
// concurrently from multiple goroutines.
type CMAC struct {
	block cipher.Block
	k1    [CMACSize]byte
	k2    [CMACSize]byte
	x     [CMACSize]byte // running CBC state
	buf   [CMACSize]byte // pending partial block
	n     int            // bytes pending in buf
}

// NewCMAC returns an AES-CMAC instance keyed with key (16, 24 or 32 bytes).
// The paper's server uses sgx_rijndael128_cmac_msg, i.e. AES-128-CMAC; pass
// a 16-byte key for that configuration.
func NewCMAC(key []byte) (*CMAC, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, ErrCMACKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	c := &CMAC{block: block}
	// Subkey generation (RFC 4493 §2.3).
	var l [CMACSize]byte
	block.Encrypt(l[:], l[:])
	shiftLeftOne(c.k1[:], l[:])
	if l[0]&0x80 != 0 {
		c.k1[CMACSize-1] ^= cmacRb
	}
	shiftLeftOne(c.k2[:], c.k1[:])
	if c.k1[0]&0x80 != 0 {
		c.k2[CMACSize-1] ^= cmacRb
	}
	return c, nil
}

// Write absorbs p into the MAC state. It never returns an error.
func (c *CMAC) Write(p []byte) (int, error) {
	total := len(p)
	// The final block must stay pending until Sum, so only flush the buffer
	// when more input follows it.
	if c.n == CMACSize && len(p) > 0 {
		c.flushBuf()
	}
	if c.n > 0 {
		n := copy(c.buf[c.n:], p)
		c.n += n
		p = p[n:]
		if c.n == CMACSize && len(p) > 0 {
			c.flushBuf()
		}
	}
	// Process whole blocks, keeping at least one byte pending for the final
	// block transformation.
	for len(p) > CMACSize {
		xorBlock(c.x[:], p[:CMACSize])
		c.block.Encrypt(c.x[:], c.x[:])
		p = p[CMACSize:]
	}
	if len(p) > 0 {
		c.n = copy(c.buf[:], p)
	}
	return total, nil
}

func (c *CMAC) flushBuf() {
	xorBlock(c.x[:], c.buf[:])
	c.block.Encrypt(c.x[:], c.x[:])
	c.n = 0
}

// Sum appends the 16-byte tag over everything written so far to b and
// returns the result. Sum does not modify the running state, so a CMAC can
// continue to absorb data afterwards.
func (c *CMAC) Sum(b []byte) []byte {
	var last [CMACSize]byte
	if c.n == CMACSize {
		copy(last[:], c.buf[:])
		xorBlock(last[:], c.k1[:])
	} else {
		copy(last[:], c.buf[:c.n])
		last[c.n] = 0x80
		xorBlock(last[:], c.k2[:])
	}
	var tag [CMACSize]byte
	copy(tag[:], c.x[:])
	xorBlock(tag[:], last[:])
	c.block.Encrypt(tag[:], tag[:])
	return append(b, tag[:]...)
}

// Reset restores the CMAC to its freshly keyed state.
func (c *CMAC) Reset() {
	c.x = [CMACSize]byte{}
	c.buf = [CMACSize]byte{}
	c.n = 0
}

// Size returns the tag size in bytes.
func (c *CMAC) Size() int { return CMACSize }

// BlockSize returns the underlying block size in bytes.
func (c *CMAC) BlockSize() int { return CMACSize }

// ComputeCMAC returns the AES-CMAC tag of msg under key.
func ComputeCMAC(key, msg []byte) ([]byte, error) {
	c, err := NewCMAC(key)
	if err != nil {
		return nil, err
	}
	_, _ = c.Write(msg)
	return c.Sum(nil), nil
}

// VerifyCMAC reports whether tag is the AES-CMAC of msg under key, using a
// constant-time comparison.
func VerifyCMAC(key, msg, tag []byte) (bool, error) {
	want, err := ComputeCMAC(key, msg)
	if err != nil {
		return false, err
	}
	if len(tag) != CMACSize {
		return false, nil
	}
	return subtle.ConstantTimeCompare(want, tag) == 1, nil
}

// shiftLeftOne sets dst to src shifted left by one bit. dst and src must be
// 16 bytes.
func shiftLeftOne(dst, src []byte) {
	var carry byte
	for i := CMACSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
}

// xorBlock XORs b into a in place; both must be 16 bytes.
func xorBlock(a, b []byte) {
	for i := 0; i < CMACSize; i++ {
		a[i] ^= b[i]
	}
}
