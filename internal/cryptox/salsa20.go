// Package cryptox provides the cryptographic primitives Precursor relies
// on: the Salsa20 stream cipher for client-side payload encryption,
// AES-CMAC (RFC 4493) for payload authentication, AES-128-GCM for transport
// encryption of control data, and HKDF-SHA-256 for session-key derivation.
//
// The paper implements payload encryption with Libsodium's Salsa20 and
// payload MACs with the SGX SDK's sgx_rijndael128_cmac_msg; both are
// reimplemented here from their public specifications on top of the Go
// standard library only.
package cryptox

import (
	"encoding/binary"
	"errors"
	"math"
)

// Salsa20 parameter sizes in bytes.
const (
	Salsa20KeySize   = 32
	Salsa20NonceSize = 8
	salsa20BlockSize = 64
)

// Errors returned by the Salsa20 API.
var (
	ErrSalsa20KeySize   = errors.New("cryptox: salsa20 key must be 32 bytes")
	ErrSalsa20NonceSize = errors.New("cryptox: salsa20 nonce must be 8 bytes")
	ErrSalsa20Exhausted = errors.New("cryptox: salsa20 keystream exhausted")
	ErrShortDst         = errors.New("cryptox: destination shorter than source")
)

// sigma is the Salsa20 expansion constant "expand 32-byte k".
var sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574}

// Salsa20 is a seekable Salsa20/20 stream cipher instance.
//
// The zero value is not usable; construct instances with NewSalsa20. A
// Salsa20 value must not be used concurrently from multiple goroutines.
type Salsa20 struct {
	state   [16]uint32
	block   [salsa20BlockSize]byte
	blockAt uint64 // counter value the cached block was produced at
	haveBuf bool
	bufOff  int
	counter uint64
}

// NewSalsa20 returns a Salsa20/20 cipher keyed with the 32-byte key and the
// 8-byte nonce, positioned at the start of the keystream.
func NewSalsa20(key, nonce []byte) (*Salsa20, error) {
	if len(key) != Salsa20KeySize {
		return nil, ErrSalsa20KeySize
	}
	if len(nonce) != Salsa20NonceSize {
		return nil, ErrSalsa20NonceSize
	}
	s := &Salsa20{}
	s.state[0] = sigma[0]
	s.state[1] = binary.LittleEndian.Uint32(key[0:4])
	s.state[2] = binary.LittleEndian.Uint32(key[4:8])
	s.state[3] = binary.LittleEndian.Uint32(key[8:12])
	s.state[4] = binary.LittleEndian.Uint32(key[12:16])
	s.state[5] = sigma[1]
	s.state[6] = binary.LittleEndian.Uint32(nonce[0:4])
	s.state[7] = binary.LittleEndian.Uint32(nonce[4:8])
	s.state[8] = 0 // counter low
	s.state[9] = 0 // counter high
	s.state[10] = sigma[2]
	s.state[11] = binary.LittleEndian.Uint32(key[16:20])
	s.state[12] = binary.LittleEndian.Uint32(key[20:24])
	s.state[13] = binary.LittleEndian.Uint32(key[24:28])
	s.state[14] = binary.LittleEndian.Uint32(key[28:32])
	s.state[15] = sigma[3]
	return s, nil
}

// Seek positions the keystream at the given absolute byte offset.
func (s *Salsa20) Seek(offset uint64) {
	s.counter = offset / salsa20BlockSize
	s.bufOff = int(offset % salsa20BlockSize)
	s.haveBuf = s.bufOff != 0
	if s.haveBuf {
		s.generateBlock(s.counter)
		s.blockAt = s.counter
		s.counter++
	}
}

// XORKeyStream XORs src with the keystream and writes the result to dst.
// dst and src may overlap entirely or not at all. It returns an error if the
// 2^70-byte keystream would be exhausted (practically unreachable).
func (s *Salsa20) XORKeyStream(dst, src []byte) error {
	if len(dst) < len(src) {
		return ErrShortDst
	}
	for len(src) > 0 {
		if !s.haveBuf || s.bufOff == salsa20BlockSize {
			if s.counter == math.MaxUint64 {
				return ErrSalsa20Exhausted
			}
			s.generateBlock(s.counter)
			s.blockAt = s.counter
			s.counter++
			s.bufOff = 0
			s.haveBuf = true
		}
		n := copy(dst, src) // bound by len(src); re-bound below
		if avail := salsa20BlockSize - s.bufOff; n > avail {
			n = avail
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ s.block[s.bufOff+i]
		}
		s.bufOff += n
		dst = dst[n:]
		src = src[n:]
	}
	return nil
}

// generateBlock runs the Salsa20/20 core for the given 64-byte block counter
// and stores the keystream block in s.block.
func (s *Salsa20) generateBlock(counter uint64) {
	var in [16]uint32
	copy(in[:], s.state[:])
	in[8] = uint32(counter)
	in[9] = uint32(counter >> 32)

	x := in
	for round := 0; round < 20; round += 2 {
		// Column round.
		x[4] ^= rotl32(x[0]+x[12], 7)
		x[8] ^= rotl32(x[4]+x[0], 9)
		x[12] ^= rotl32(x[8]+x[4], 13)
		x[0] ^= rotl32(x[12]+x[8], 18)

		x[9] ^= rotl32(x[5]+x[1], 7)
		x[13] ^= rotl32(x[9]+x[5], 9)
		x[1] ^= rotl32(x[13]+x[9], 13)
		x[5] ^= rotl32(x[1]+x[13], 18)

		x[14] ^= rotl32(x[10]+x[6], 7)
		x[2] ^= rotl32(x[14]+x[10], 9)
		x[6] ^= rotl32(x[2]+x[14], 13)
		x[10] ^= rotl32(x[6]+x[2], 18)

		x[3] ^= rotl32(x[15]+x[11], 7)
		x[7] ^= rotl32(x[3]+x[15], 9)
		x[11] ^= rotl32(x[7]+x[3], 13)
		x[15] ^= rotl32(x[11]+x[7], 18)

		// Row round.
		x[1] ^= rotl32(x[0]+x[3], 7)
		x[2] ^= rotl32(x[1]+x[0], 9)
		x[3] ^= rotl32(x[2]+x[1], 13)
		x[0] ^= rotl32(x[3]+x[2], 18)

		x[6] ^= rotl32(x[5]+x[4], 7)
		x[7] ^= rotl32(x[6]+x[5], 9)
		x[4] ^= rotl32(x[7]+x[6], 13)
		x[5] ^= rotl32(x[4]+x[7], 18)

		x[11] ^= rotl32(x[10]+x[9], 7)
		x[8] ^= rotl32(x[11]+x[10], 9)
		x[9] ^= rotl32(x[8]+x[11], 13)
		x[10] ^= rotl32(x[9]+x[8], 18)

		x[12] ^= rotl32(x[15]+x[14], 7)
		x[13] ^= rotl32(x[12]+x[15], 9)
		x[14] ^= rotl32(x[13]+x[12], 13)
		x[15] ^= rotl32(x[14]+x[13], 18)
	}

	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(s.block[i*4:], x[i]+in[i])
	}
}

// Salsa20XOR is a one-shot helper: it XORs src with the Salsa20 keystream
// for (key, nonce) starting at offset zero and returns the result as a new
// slice. Encryption and decryption are the same operation.
func Salsa20XOR(key, nonce, src []byte) ([]byte, error) {
	s, err := NewSalsa20(key, nonce)
	if err != nil {
		return nil, err
	}
	dst := make([]byte, len(src))
	if err := s.XORKeyStream(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

func rotl32(v uint32, n uint) uint32 {
	return v<<n | v>>(32-n)
}
