// Package vlog implements Precursor's durable tiered storage: a
// WiscKey-style partitioned value log on untrusted disk.
//
// The paper's central trick — values arrive client-encrypted and MACed,
// so the server enclave never performs payload cryptography — extends
// naturally to the storage path: the very same ciphertext can spill
// verbatim to untrusted media. Only the enclave-held index (key →
// pointer) and a small sealed metadata blob per record need protection.
// The log therefore stores, per record, the client's AEAD ciphertext
// bytes unchanged plus an opaque metadata segment the enclave sealed
// under its sealing key; the log itself performs no cryptography and
// trusts nothing it reads back (every decode is bounds-checked and
// CRC-verified, and the enclave re-authenticates the sealed metadata
// with the record's placement folded into the associated data).
//
// Layout: fixed-size segment files (seg-00000001.vlog, ...) that rotate
// when full. Appends reserve (segment, offset, seq) under a short lock,
// write their record bytes at the reserved offset, then wait on a group
// commit: a single committer goroutine coalesces concurrent appenders
// into one fsync per batch, so a put's durability cost is amortized
// across every trusted thread writing at that moment.
//
// Crash recovery is segment replay in (segment, offset) order. A torn
// tail — a record whose bytes end early or whose CRC fails — is
// truncated and replay continues (ErrTornSegment); cryptographic
// verification of each record is the caller's job via the replay
// callback, which is where tampering (as opposed to torn writes) is
// detected and refused.
package vlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the log.
var (
	// ErrTornSegment reports a structurally damaged record — a torn
	// write from a crash mid-commit. Replay truncates the segment at the
	// damage and continues; the error is surfaced so operators can tell
	// disk corruption (truncate-and-continue) from tampering (refuse).
	ErrTornSegment = errors.New("vlog: torn segment (truncated at damaged record)")
	// ErrRecoveryRequired reports an append against a log whose existing
	// segments have not been replayed yet: appending before recovery
	// would reuse sequence numbers and offsets.
	ErrRecoveryRequired = errors.New("vlog: recovery required before append")
	// ErrClosed reports an operation against a closed log.
	ErrClosed = errors.New("vlog: closed")
	// ErrNotFound reports a read against a segment that does not exist
	// (typically removed by GC between pointer load and read).
	ErrNotFound = errors.New("vlog: segment not found")
	// ErrBadRecord reports a record that failed structural validation on
	// a point read (ReadAt), as opposed to sequential replay.
	ErrBadRecord = errors.New("vlog: bad record")
	// ErrWedged reports a log disabled by an earlier write error: the
	// segment tail is in an unknown state, so further appends could
	// write unrecoverable records.
	ErrWedged = errors.New("vlog: wedged by earlier write error")
)

// Ptr locates a record: the value pointer the enclave index stores
// beside K_operation (segment id, byte offset, full record length).
type Ptr struct {
	Segment uint32
	Offset  uint64
	Length  uint32
}

// Valid reports whether the pointer refers to a record.
func (p Ptr) Valid() bool { return p.Length > 0 }

// String renders the pointer for logs and errors.
func (p Ptr) String() string {
	return fmt.Sprintf("seg=%d off=%d len=%d", p.Segment, p.Offset, p.Length)
}

// Record is one decoded log record. Key and Payload alias read buffers
// and must be copied if retained. Meta is the enclave-sealed metadata
// blob, opaque to the log.
type Record struct {
	Seq       uint64
	Tombstone bool
	Key       []byte
	Meta      []byte
	Payload   []byte
}

// Config tunes a Log.
type Config struct {
	// Dir is the directory segments live in; required.
	Dir string
	// SegmentBytes is the rotation threshold (default 64 MiB). A record
	// larger than the threshold still fits: it gets a segment to itself.
	SegmentBytes int64
	// FS overrides the filesystem (default: the OS). Tests inject a
	// seeded crash-simulating MemFS here.
	FS FS
}

// DefaultSegmentBytes is the segment rotation threshold when
// Config.SegmentBytes is zero.
const DefaultSegmentBytes = 64 << 20

// Stats is a snapshot of log activity.
type Stats struct {
	Segments        int    // segment files currently on disk
	ActiveSegment   uint32 // id of the segment appends go to (0 = none yet)
	AppendedRecords uint64 // records appended over the log's lifetime
	AppendedBytes   uint64 // bytes appended over the log's lifetime
	LiveBytes       int64  // bytes in segments minus bytes marked dead
	DeadBytes       int64  // bytes whose records were superseded or deleted
	GroupCommits    uint64 // fsync batches issued by the committer
	SyncedAppends   uint64 // appends covered by those batches
	Reads           uint64 // point reads (ReadAt)
	GCReclaimed     uint64 // bytes reclaimed by RemoveSegment
	GCSegments      uint64 // segments removed by GC
}

// BatchAvg returns the mean appends per group commit (0 when no commit
// has happened yet) — the fsync-coalescing factor.
func (s Stats) BatchAvg() float64 {
	if s.GroupCommits == 0 {
		return 0
	}
	return float64(s.SyncedAppends) / float64(s.GroupCommits)
}

// segState is the per-segment bookkeeping the log keeps in memory.
type segState struct {
	bytes int64 // bytes written to the segment
	dead  int64 // bytes of superseded records
}

// syncReq is one appender waiting for its record's group commit.
type syncReq struct {
	done chan error
}

// Log is a partitioned value log. All methods are safe for concurrent
// use.
type Log struct {
	cfg Config
	fs  FS

	mu         sync.Mutex
	recoverDue bool // segments exist but have not been replayed
	closed     bool
	wedged     bool
	active     uint32 // current append segment id (0 = none created yet)
	activeOff  uint64
	seq        uint64
	writers    map[uint32]File
	dirty      map[uint32]File // files with unsynced writes
	segs       map[uint32]*segState

	readMu  sync.Mutex
	readers map[uint32]File

	syncCh  chan syncReq
	stopCh  chan struct{}
	doneCh  chan struct{}
	statsMu sync.Mutex
	stats   Stats
}

// Open creates or opens the log in cfg.Dir. Existing segments are
// listed (not read): if any are present the log refuses appends until
// Replay has run, so sequence numbers and offsets resume safely above
// everything on disk.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("vlog: Config.Dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	fs := cfg.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("vlog: %w", err)
	}
	l := &Log{
		cfg:     cfg,
		fs:      fs,
		writers: make(map[uint32]File),
		dirty:   make(map[uint32]File),
		segs:    make(map[uint32]*segState),
		readers: make(map[uint32]File),
		syncCh:  make(chan syncReq, 1024),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	ids, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		size, err := l.segmentSize(id)
		if err != nil {
			return nil, err
		}
		l.segs[id] = &segState{bytes: size}
		if id > l.active {
			l.active = id
		}
	}
	l.recoverDue = len(ids) > 0
	go l.committer()
	return l, nil
}

// segmentName renders a segment id as its file name.
func segmentName(id uint32) string { return fmt.Sprintf("seg-%08d.vlog", id) }

// segmentPath renders a segment id as its path under the log dir.
func (l *Log) segmentPath(id uint32) string {
	return filepath.Join(l.cfg.Dir, segmentName(id))
}

// listSegments returns the on-disk segment ids in ascending order.
func (l *Log) listSegments() ([]uint32, error) {
	names, err := l.fs.List(l.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("vlog: list segments: %w", err)
	}
	var ids []uint32
	for _, name := range names {
		var id uint32
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".vlog") {
			continue
		}
		if _, err := fmt.Sscanf(name, "seg-%08d.vlog", &id); err != nil || id == 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// segmentSize returns a segment's current byte size.
func (l *Log) segmentSize(id uint32) (int64, error) {
	f, err := l.fs.OpenRead(l.segmentPath(id))
	if err != nil {
		return 0, fmt.Errorf("vlog: open %s: %w", segmentName(id), err)
	}
	defer f.Close()
	return f.Size()
}

// Append reserves placement for a record, asks the caller to produce
// the enclave-sealed metadata for that placement via sealMeta (the hook
// that lets the enclave fold segment and offset into the metadata's
// associated data), writes the record, and blocks until the record's
// group commit has fsynced. It returns the record's pointer and
// sequence number only after the bytes are durable — the server acks a
// put no earlier than this return.
//
// metaLen must equal len(sealMeta(...)) exactly: placement is reserved
// before the metadata exists, so its size is declared up front.
func (l *Log) Append(key, payload []byte, tombstone bool, metaLen int, sealMeta func(ptr Ptr, seq uint64) ([]byte, error)) (Ptr, uint64, error) {
	return l.append(key, payload, tombstone, metaLen, 0, false, sealMeta)
}

// AppendAt appends a record that keeps a previously issued sequence
// number instead of drawing a fresh one — the GC relocation path. A
// relocated record is the same logical version of its key, so it must
// keep its version: replay applies records newest-sequence-wins, and a
// relocation that drew a fresh sequence could outrank a genuinely newer
// write it raced with. The log's own counter is not advanced.
func (l *Log) AppendAt(seq uint64, key, payload []byte, tombstone bool, metaLen int, sealMeta func(ptr Ptr) ([]byte, error)) (Ptr, error) {
	ptr, _, err := l.append(key, payload, tombstone, metaLen, seq, true, func(p Ptr, _ uint64) ([]byte, error) {
		return sealMeta(p)
	})
	return ptr, err
}

// append is the shared reservation + group-commit path.
func (l *Log) append(key, payload []byte, tombstone bool, metaLen int, seqOverride uint64, hasOverride bool, sealMeta func(ptr Ptr, seq uint64) ([]byte, error)) (Ptr, uint64, error) {
	recLen := recordLen(len(key), metaLen, len(payload))

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Ptr{}, 0, ErrClosed
	}
	if l.wedged {
		l.mu.Unlock()
		return Ptr{}, 0, ErrWedged
	}
	if l.recoverDue {
		l.mu.Unlock()
		return Ptr{}, 0, ErrRecoveryRequired
	}
	// Rotate when the record would cross the threshold (or no segment
	// exists yet). The first record of a fresh segment always fits, so
	// oversized records get a segment to themselves.
	if l.active == 0 || (l.activeOff > 0 && l.activeOff+uint64(recLen) > uint64(l.cfg.SegmentBytes)) {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return Ptr{}, 0, err
		}
	}
	w, err := l.writerLocked(l.active)
	if err != nil {
		l.mu.Unlock()
		return Ptr{}, 0, err
	}
	var seq uint64
	if hasOverride {
		seq = seqOverride
	} else {
		l.seq++
		seq = l.seq
	}
	ptr := Ptr{Segment: l.active, Offset: l.activeOff, Length: uint32(recLen)}
	l.activeOff += uint64(recLen)
	l.segs[l.active].bytes += int64(recLen)

	// Seal and write while holding the lock: records land at their
	// reserved offsets in reservation order, so a crash tears only the
	// tail, never a hole. The sealed metadata is ~100 B of AEAD work —
	// cheap next to the fsync this append is about to wait for.
	meta, err := sealMeta(ptr, seq)
	if err == nil && len(meta) != metaLen {
		err = fmt.Errorf("vlog: sealMeta returned %d bytes, declared %d", len(meta), metaLen)
	}
	if err != nil {
		// The reserved region is never written: the tail is torn at this
		// record, and anything an interleaved later append wrote past it
		// would be unreachable by replay. Wedge the log rather than risk
		// acking writes that recovery cannot see.
		l.wedged = true
		l.mu.Unlock()
		return Ptr{}, 0, err
	}
	buf := encodeRecord(nil, seq, tombstone, key, meta, payload)
	if _, err := w.WriteAt(buf, int64(ptr.Offset)); err != nil {
		l.wedged = true
		l.mu.Unlock()
		return Ptr{}, 0, fmt.Errorf("vlog: write: %w", err)
	}
	l.dirty[ptr.Segment] = w
	l.mu.Unlock()

	l.statsMu.Lock()
	l.stats.AppendedRecords++
	l.stats.AppendedBytes += uint64(recLen)
	l.statsMu.Unlock()

	// Group commit: wait for the committer's next fsync batch.
	req := syncReq{done: make(chan error, 1)}
	select {
	case l.syncCh <- req:
	case <-l.stopCh:
		return Ptr{}, 0, ErrClosed
	}
	select {
	case err := <-req.done:
		if err != nil {
			return Ptr{}, 0, err
		}
	case <-l.stopCh:
		return Ptr{}, 0, ErrClosed
	}
	return ptr, seq, nil
}

// rotateLocked switches appends to a fresh segment. Called with mu held.
func (l *Log) rotateLocked() error {
	next := l.active + 1
	w, err := l.fs.OpenWrite(l.segmentPath(next))
	if err != nil {
		return fmt.Errorf("vlog: rotate: %w", err)
	}
	// The new file's directory entry must be durable before any record
	// in it is acked: fsyncing only the file leaves a crash free to drop
	// the file itself, silently losing the log tail.
	if err := l.fs.SyncDir(l.cfg.Dir); err != nil {
		_ = w.Close()
		return fmt.Errorf("vlog: rotate: sync dir: %w", err)
	}
	l.writers[next] = w
	l.active = next
	l.activeOff = 0
	l.segs[next] = &segState{}
	// Retire write handles for full segments with nothing left unsynced:
	// the committer holds its own reference for any still-dirty file.
	for id, old := range l.writers {
		if id != next {
			if _, dirty := l.dirty[id]; !dirty {
				_ = old.Close()
				delete(l.writers, id)
			}
		}
	}
	return nil
}

// writerLocked returns the write handle for segment id, opening it if
// needed. Called with mu held.
func (l *Log) writerLocked(id uint32) (File, error) {
	if w, ok := l.writers[id]; ok {
		return w, nil
	}
	w, err := l.fs.OpenWrite(l.segmentPath(id))
	if err != nil {
		return nil, fmt.Errorf("vlog: open segment %d: %w", id, err)
	}
	l.writers[id] = w
	return w, nil
}

// committer is the group-commit loop: it drains all waiting appenders,
// fsyncs every dirty segment once, and releases the whole batch.
func (l *Log) committer() {
	defer close(l.doneCh)
	for {
		var batch []syncReq
		select {
		case <-l.stopCh:
			return
		case first := <-l.syncCh:
			batch = append(batch, first)
		}
		// Coalesce: everyone whose write already landed shares the fsync.
	drain:
		for {
			select {
			case r := <-l.syncCh:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		l.mu.Lock()
		wedged := l.wedged
		dirty := l.dirty
		l.dirty = make(map[uint32]File)
		l.mu.Unlock()
		var err error
		if wedged {
			err = ErrWedged
		} else {
			for _, f := range dirty {
				if e := f.Sync(); e != nil && err == nil {
					err = fmt.Errorf("vlog: fsync: %w", e)
				}
			}
			if err != nil {
				// A failed fsync leaves the earlier batch's pages in an
				// unknown state: the kernel may drop them after reporting
				// the error, so a later successful fsync would ack records
				// *behind* a possibly-torn predecessor — records replay
				// would then truncate away. Wedge before releasing the
				// batch so no subsequent append can be acked.
				l.mu.Lock()
				l.wedged = true
				l.mu.Unlock()
			}
		}
		if err == nil {
			l.statsMu.Lock()
			l.stats.GroupCommits++
			l.stats.SyncedAppends += uint64(len(batch))
			l.statsMu.Unlock()
		}
		for _, r := range batch {
			r.done <- err
		}
	}
}

// ReadAt reads and structurally validates the record at ptr, returning
// its decoded form. The caller owns cryptographic verification of
// Meta; Key and Payload alias a fresh buffer.
func (l *Log) ReadAt(ptr Ptr) (Record, error) {
	if !ptr.Valid() || ptr.Length < recordHeaderLen {
		return Record{}, ErrBadRecord
	}
	f, err := l.reader(ptr.Segment)
	if err != nil {
		return Record{}, err
	}
	buf := make([]byte, ptr.Length)
	if _, err := f.ReadAt(buf, int64(ptr.Offset)); err != nil {
		// A concurrent RemoveSegment closes cached read handles; the
		// failure then means "segment gone", not "record damaged", and
		// callers holding a stale pointer should re-fetch it.
		if !l.segmentLive(ptr.Segment) {
			return Record{}, fmt.Errorf("%w: segment %d", ErrNotFound, ptr.Segment)
		}
		return Record{}, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	rec, n, err := decodeRecord(buf)
	if err != nil || n != int(ptr.Length) {
		if !l.segmentLive(ptr.Segment) {
			return Record{}, fmt.Errorf("%w: segment %d", ErrNotFound, ptr.Segment)
		}
		return Record{}, ErrBadRecord
	}
	l.statsMu.Lock()
	l.stats.Reads++
	l.statsMu.Unlock()
	return rec, nil
}

// segmentLive reports whether segment id is still part of the log.
func (l *Log) segmentLive(id uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.segs[id]
	return ok
}

// reader returns a cached read handle for segment id.
func (l *Log) reader(id uint32) (File, error) {
	l.readMu.Lock()
	defer l.readMu.Unlock()
	if f, ok := l.readers[id]; ok {
		return f, nil
	}
	f, err := l.fs.OpenRead(l.segmentPath(id))
	if err != nil {
		return nil, fmt.Errorf("%w: segment %d: %v", ErrNotFound, id, err)
	}
	l.readers[id] = f
	return f, nil
}

// MarkDead records that the record at ptr has been superseded (by an
// overwrite, delete or GC move): its bytes are reclaimable once their
// segment's live ratio drops below the GC threshold.
func (l *Log) MarkDead(ptr Ptr) {
	if !ptr.Valid() {
		return
	}
	l.mu.Lock()
	st, ok := l.segs[ptr.Segment]
	if ok {
		st.dead += int64(ptr.Length)
	}
	l.mu.Unlock()
	if !ok {
		// The segment is already removed (GC finished first, or the
		// pointer predates a crash that compacted it away): nothing left
		// to account.
		return
	}
	l.statsMu.Lock()
	l.stats.DeadBytes += int64(ptr.Length)
	l.statsMu.Unlock()
}

// SegmentStat describes one segment for GC candidate selection.
type SegmentStat struct {
	ID     uint32
	Bytes  int64
	Dead   int64
	Active bool // the append segment is never a GC candidate
}

// DeadRatio returns the fraction of the segment's bytes marked dead.
func (s SegmentStat) DeadRatio() float64 {
	if s.Bytes <= 0 {
		return 0
	}
	return float64(s.Dead) / float64(s.Bytes)
}

// Segments returns per-segment stats in ascending id order.
func (l *Log) Segments() []SegmentStat {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentStat, 0, len(l.segs))
	for id, st := range l.segs {
		out = append(out, SegmentStat{ID: id, Bytes: st.bytes, Dead: st.dead, Active: id == l.active})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OldestSegment returns the lowest live segment id (0 when empty).
func (l *Log) OldestSegment() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var oldest uint32
	for id := range l.segs {
		if oldest == 0 || id < oldest {
			oldest = id
		}
	}
	return oldest
}

// RemoveSegment deletes a fully-compacted segment from disk and drops
// its bookkeeping. The active segment cannot be removed.
func (l *Log) RemoveSegment(id uint32) error {
	l.mu.Lock()
	if id == l.active {
		l.mu.Unlock()
		return fmt.Errorf("vlog: cannot remove active segment %d", id)
	}
	st, ok := l.segs[id]
	if !ok {
		l.mu.Unlock()
		return ErrNotFound
	}
	bytes := st.bytes
	dead := st.dead
	delete(l.segs, id)
	if w, ok := l.writers[id]; ok {
		_ = w.Close()
		delete(l.writers, id)
	}
	delete(l.dirty, id)
	l.mu.Unlock()

	l.readMu.Lock()
	if r, ok := l.readers[id]; ok {
		_ = r.Close()
		delete(l.readers, id)
	}
	l.readMu.Unlock()

	if err := l.fs.Remove(l.segmentPath(id)); err != nil {
		return fmt.Errorf("vlog: remove segment %d: %w", id, err)
	}
	if err := l.fs.SyncDir(l.cfg.Dir); err != nil {
		return fmt.Errorf("vlog: remove segment %d: sync dir: %w", id, err)
	}
	l.statsMu.Lock()
	l.stats.GCReclaimed += uint64(bytes)
	l.stats.GCSegments++
	l.stats.DeadBytes -= dead
	l.statsMu.Unlock()
	return nil
}

// Stats returns a snapshot of log activity.
func (l *Log) Stats() Stats {
	l.statsMu.Lock()
	st := l.stats
	l.statsMu.Unlock()
	l.mu.Lock()
	st.Segments = len(l.segs)
	st.ActiveSegment = l.active
	var total int64
	for _, s := range l.segs {
		total += s.bytes
	}
	st.LiveBytes = total - st.DeadBytes
	l.mu.Unlock()
	return st
}

// Seq returns the highest sequence number issued so far.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// EnsureSeq raises the log's sequence counter to at least min, so that
// future appends draw numbers above it. Recovery uses this to keep
// sequences above a trusted snapshot watermark even when every on-disk
// record below it has been garbage-collected away.
func (l *Log) EnsureSeq(min uint64) {
	l.mu.Lock()
	if min > l.seq {
		l.seq = min
	}
	l.mu.Unlock()
}

// RecoveryPending reports whether the log has on-disk segments that
// have not been replayed yet (appends are refused until Replay runs).
func (l *Log) RecoveryPending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recoverDue
}

// Close syncs dirty segments and stops the committer. Appends after
// Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	dirty := l.dirty
	l.dirty = make(map[uint32]File)
	writers := l.writers
	l.writers = make(map[uint32]File)
	l.mu.Unlock()

	close(l.stopCh)
	<-l.doneCh

	var err error
	for _, f := range dirty {
		if e := f.Sync(); e != nil && err == nil {
			err = e
		}
	}
	for _, f := range writers {
		if e := f.Close(); e != nil && err == nil {
			err = e
		}
	}
	l.readMu.Lock()
	for id, f := range l.readers {
		_ = f.Close()
		delete(l.readers, id)
	}
	l.readMu.Unlock()
	return err
}

// crcTable is the Castagnoli table used for record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record framing limits: decoders reject anything beyond these before
// allocating, so forged length headers cannot balloon memory.
const (
	recordMagic     = 0x50564c31 // "PVL1"
	recordHeaderLen = 4 + 4 + 8 + 1 + 2 + 2 + 4
	flagTombstone   = 1

	// MaxKeyBytes bounds a record's key (matches the wire limit).
	MaxKeyBytes = 4096
	// MaxMetaBytes bounds the sealed metadata blob.
	MaxMetaBytes = 8192
	// MaxPayloadBytes bounds a record payload (1 MiB value + framing
	// slack, matching the wire-format ceiling).
	MaxPayloadBytes = 1<<20 + 64 + 16
)

// recordLen returns the encoded size of a record.
func recordLen(keyLen, metaLen, payLen int) int {
	return recordHeaderLen + keyLen + metaLen + payLen
}

// encodeRecord appends the record encoding to dst:
//
//	magic u32 | crc u32 | seq u64 | flags u8 | keyLen u16 | metaLen u16 |
//	payLen u32 | key | meta | payload
//
// The CRC (Castagnoli) covers everything after the crc field. It is an
// integrity check against torn writes and bit rot only — authenticity
// comes from the enclave-sealed meta, whose associated data binds the
// record's placement.
func encodeRecord(dst []byte, seq uint64, tombstone bool, key, meta, payload []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, recordMagic)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc patched below
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	var flags byte
	if tombstone {
		flags |= flagTombstone
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(meta)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, key...)
	dst = append(dst, meta...)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start+8:], crcTable)
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc)
	return dst
}

// decodeRecord parses one record at the start of buf, returning it and
// the encoded length consumed. Slices alias buf.
func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < recordHeaderLen {
		return Record{}, 0, ErrTornSegment
	}
	if binary.LittleEndian.Uint32(buf) != recordMagic {
		return Record{}, 0, ErrTornSegment
	}
	crc := binary.LittleEndian.Uint32(buf[4:])
	seq := binary.LittleEndian.Uint64(buf[8:])
	flags := buf[16]
	keyLen := int(binary.LittleEndian.Uint16(buf[17:]))
	metaLen := int(binary.LittleEndian.Uint16(buf[19:]))
	payLen := int(binary.LittleEndian.Uint32(buf[21:]))
	if keyLen == 0 || keyLen > MaxKeyBytes || metaLen > MaxMetaBytes || payLen > MaxPayloadBytes {
		return Record{}, 0, ErrTornSegment
	}
	total := recordLen(keyLen, metaLen, payLen)
	if len(buf) < total {
		return Record{}, 0, ErrTornSegment
	}
	if crc32.Checksum(buf[8:total], crcTable) != crc {
		return Record{}, 0, ErrTornSegment
	}
	rest := buf[recordHeaderLen:total]
	rec := Record{
		Seq:       seq,
		Tombstone: flags&flagTombstone != 0,
		Key:       rest[:keyLen],
		Meta:      rest[keyLen : keyLen+metaLen],
		Payload:   rest[keyLen+metaLen:],
	}
	return rec, total, nil
}
