package vlog

import (
	"errors"
	"fmt"
	"sort"
)

// ReplayStats summarises a recovery pass.
type ReplayStats struct {
	Records      uint64 // structurally valid records visited
	Bytes        uint64 // bytes those records occupy
	TornSegments int    // segments truncated at a damaged record
	TornBytes    int64  // bytes discarded by those truncations
	Torn         error  // first truncation, wrapping ErrTornSegment (nil if clean)
	MaxSeq       uint64 // highest sequence number seen
}

// Replay scans every segment in (segment, offset) order, invoking fn
// for each structurally valid record. A damaged record — torn write,
// bad magic, bad CRC — truncates its segment there and
// replay continues with the next segment; the truncation is reported in
// ReplayStats (wrapping ErrTornSegment) rather than failing recovery,
// because torn tails are the expected residue of a crash. An error from
// fn aborts replay immediately and is returned as-is: that path is for
// cryptographic refusal (tampered sealed metadata), which must stop the
// server, not be truncated around.
//
// After a successful pass the log's sequence counter resumes above
// everything on disk and appends are re-enabled.
func (l *Log) Replay(fn func(ptr Ptr, rec Record) error) (ReplayStats, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ReplayStats{}, ErrClosed
	}
	if !l.recoverDue && l.seq > 0 {
		l.mu.Unlock()
		return ReplayStats{}, fmt.Errorf("vlog: replay after appends have begun")
	}
	ids := make([]uint32, 0, len(l.segs))
	for id := range l.segs {
		ids = append(ids, id)
	}
	l.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var st ReplayStats
	sizes := make(map[uint32]int64, len(ids))
	for _, id := range ids {
		validEnd, err := l.scanSegment(id, &st, fn)
		if err != nil {
			return st, err
		}
		sizes[id] = validEnd
	}

	l.mu.Lock()
	for id, size := range sizes {
		if s, ok := l.segs[id]; ok {
			s.bytes = size
		}
	}
	if st.MaxSeq > l.seq {
		l.seq = st.MaxSeq
	}
	if len(ids) > 0 {
		last := ids[len(ids)-1]
		l.active = last
		l.activeOff = uint64(sizes[last])
	}
	l.recoverDue = false
	l.mu.Unlock()
	return st, nil
}

// scanSegment replays one segment, truncating it at the first damaged
// record. It returns the segment's valid length.
func (l *Log) scanSegment(id uint32, st *ReplayStats, fn func(Ptr, Record) error) (int64, error) {
	f, err := l.fs.OpenRead(l.segmentPath(id))
	if err != nil {
		return 0, fmt.Errorf("vlog: replay open segment %d: %w", id, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return 0, fmt.Errorf("vlog: replay stat segment %d: %w", id, err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			return 0, fmt.Errorf("vlog: replay read segment %d: %w", id, err)
		}
	}
	f.Close()

	off := int64(0)
	for off < size {
		// Sequence numbers may legitimately regress mid-stream: GC
		// relocates records into newer segments keeping their original
		// (older) sequence. Only structural damage tears a segment.
		rec, n, derr := decodeRecord(buf[off:])
		if derr != nil {
			return l.truncateTorn(id, off, size, derr, st)
		}
		if err := fn(Ptr{Segment: id, Offset: uint64(off), Length: uint32(n)}, rec); err != nil {
			return 0, err
		}
		if rec.Seq > st.MaxSeq {
			st.MaxSeq = rec.Seq
		}
		st.Records++
		st.Bytes += uint64(n)
		off += int64(n)
	}
	return off, nil
}

// truncateTorn cuts segment id down to off, recording the damage.
func (l *Log) truncateTorn(id uint32, off, size int64, cause error, st *ReplayStats) (int64, error) {
	if !errors.Is(cause, ErrTornSegment) {
		cause = fmt.Errorf("%w: %v", ErrTornSegment, cause)
	}
	if err := l.fs.Truncate(l.segmentPath(id), off); err != nil {
		return 0, fmt.Errorf("vlog: truncate torn segment %d: %w", id, err)
	}
	st.TornSegments++
	st.TornBytes += size - off
	if st.Torn == nil {
		st.Torn = fmt.Errorf("segment %d truncated at offset %d (%d bytes dropped): %w", id, off, size-off, cause)
	}
	return off, nil
}

// IterateSegment walks one segment's records in offset order — the GC
// read path. Unlike Replay it never truncates: structural damage in a
// segment that already survived recovery means the segment should be
// left alone, so the damage is returned (wrapping ErrTornSegment).
func (l *Log) IterateSegment(id uint32, fn func(ptr Ptr, rec Record) error) error {
	l.mu.Lock()
	if _, ok := l.segs[id]; !ok {
		l.mu.Unlock()
		return ErrNotFound
	}
	size := l.segs[id].bytes
	l.mu.Unlock()

	f, err := l.fs.OpenRead(l.segmentPath(id))
	if err != nil {
		return fmt.Errorf("%w: segment %d: %v", ErrNotFound, id, err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return fmt.Errorf("vlog: read segment %d: %w", id, err)
		}
	}
	off := int64(0)
	for off < size {
		rec, n, derr := decodeRecord(buf[off:])
		if derr != nil {
			return fmt.Errorf("segment %d offset %d: %w", id, off, derr)
		}
		if err := fn(Ptr{Segment: id, Offset: uint64(off), Length: uint32(n)}, rec); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}
