package vlog

import (
	"encoding/binary"
	"testing"
)

// FuzzSegmentReplay hardens the segment decoder against forged length
// headers and arbitrary on-disk bytes: an adversary controls the
// untrusted log files completely, so replay must never panic, never
// over-allocate from a forged length, and must classify every
// structural failure as a torn tail rather than trusting it.
func FuzzSegmentReplay(f *testing.F) {
	// Seed with a valid record, a truncated one, and hostile lengths.
	valid := encodeRecord(nil, 1, false, []byte("key"), []byte("meta"), []byte("payload"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), valid...))
	forged := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(forged[21:], 0xffffffff) // payLen
	f.Add(forged)
	forgedKey := append([]byte{}, valid...)
	binary.LittleEndian.PutUint16(forgedKey[17:], 0xffff) // keyLen
	f.Add(forgedKey)
	f.Add([]byte{})
	f.Add(make([]byte, recordHeaderLen))

	f.Fuzz(func(t *testing.T, segment []byte) {
		fs := NewMemFS(1)
		w, err := fs.OpenWrite("/log/" + segmentName(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(segment) > 0 {
			if _, err := w.WriteAt(segment, 0); err != nil {
				t.Fatal(err)
			}
		}
		w.Sync()

		l, err := Open(Config{Dir: "/log", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		st, err := l.Replay(func(ptr Ptr, rec Record) error {
			if len(rec.Key) == 0 || len(rec.Key) > MaxKeyBytes {
				t.Fatalf("decoder passed bad key length %d", len(rec.Key))
			}
			if len(rec.Meta) > MaxMetaBytes || len(rec.Payload) > MaxPayloadBytes {
				t.Fatalf("decoder passed forged lengths: meta=%d pay=%d", len(rec.Meta), len(rec.Payload))
			}
			if int(ptr.Length) != recordLen(len(rec.Key), len(rec.Meta), len(rec.Payload)) {
				t.Fatalf("pointer length mismatch")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay must truncate, not fail: %v", err)
		}
		// Whatever survived must replay cleanly a second time.
		l2, err := Open(Config{Dir: "/log", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		st2, err := l2.Replay(func(Ptr, Record) error { return nil })
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if st2.Records != st.Records || st2.Torn != nil {
			t.Fatalf("replay not idempotent after truncation: first %d records, second %d (torn=%v)", st.Records, st2.Records, st2.Torn)
		}
	})
}
