package vlog

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// appendOne is the test shorthand for a metadata-carrying append.
func appendOne(t *testing.T, l *Log, key, meta, payload string, tomb bool) (Ptr, uint64) {
	t.Helper()
	ptr, seq, err := l.Append([]byte(key), []byte(payload), tomb, len(meta), func(Ptr, uint64) ([]byte, error) {
		return []byte(meta), nil
	})
	if err != nil {
		t.Fatalf("append %q: %v", key, err)
	}
	return ptr, seq
}

func TestAppendReadRoundtrip(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ptr, seq, err := l.Append([]byte("alpha"), []byte("ciphertext-bytes"), false, 4, func(p Ptr, s uint64) ([]byte, error) {
		if p.Segment != 1 || p.Offset != 0 {
			t.Errorf("unexpected placement %v", p)
		}
		if s != 1 {
			t.Errorf("seq = %d, want 1", s)
		}
		return []byte("meta"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d", seq)
	}
	rec, err := l.ReadAt(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Key) != "alpha" || string(rec.Meta) != "meta" || string(rec.Payload) != "ciphertext-bytes" {
		t.Fatalf("roundtrip mismatch: %q %q %q", rec.Key, rec.Meta, rec.Payload)
	}
	if rec.Tombstone {
		t.Fatal("unexpected tombstone flag")
	}
}

func TestSealMetaSizeMismatchWedges(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, _, err = l.Append([]byte("k"), nil, false, 4, func(Ptr, uint64) ([]byte, error) {
		return []byte("toolong"), nil
	})
	if err == nil {
		t.Fatal("want size-mismatch error")
	}
	if _, _, err := l.Append([]byte("k2"), nil, false, 0, func(Ptr, uint64) ([]byte, error) { return nil, nil }); !errors.Is(err, ErrWedged) {
		t.Fatalf("want ErrWedged after seal failure, got %v", err)
	}
}

func TestRotationAndOversizedRecord(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var ptrs []Ptr
	for i := 0; i < 8; i++ {
		p, _ := appendOne(t, l, fmt.Sprintf("key-%d", i), "m", "0123456789abcdef0123456789abcdef0123456789abcdef", false)
		ptrs = append(ptrs, p)
	}
	// A record far larger than the segment threshold still lands.
	big, _ := appendOne(t, l, "big", "m", string(make([]byte, 1024)), false)
	ptrs = append(ptrs, big)

	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	for i, p := range ptrs {
		if _, err := l.ReadAt(p); err != nil {
			t.Fatalf("read %d after rotation: %v", i, err)
		}
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			appendOne(t, l, fmt.Sprintf("k%03d", i), "meta", "payload", false)
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.SyncedAppends != n {
		t.Fatalf("synced %d appends, want %d", st.SyncedAppends, n)
	}
	if st.GroupCommits == 0 || st.GroupCommits > n {
		t.Fatalf("group commits = %d", st.GroupCommits)
	}
	if st.BatchAvg() < 1 {
		t.Fatalf("batch avg = %v", st.BatchAvg())
	}
}

func TestMarkDeadAndRemoveSegment(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p1, _ := appendOne(t, l, "a", "m", string(make([]byte, 100)), false)
	appendOne(t, l, "b", "m", string(make([]byte, 100)), false) // forces rotation
	l.MarkDead(p1)

	segs := l.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].DeadRatio() != 1.0 {
		t.Fatalf("segment 1 dead ratio = %v", segs[0].DeadRatio())
	}
	if !segs[1].Active {
		t.Fatal("last segment should be active")
	}
	if err := l.RemoveSegment(segs[1].ID); err == nil {
		t.Fatal("removing active segment should fail")
	}
	if err := l.RemoveSegment(p1.Segment); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadAt(p1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after remove: %v", err)
	}
	st := l.Stats()
	if st.GCSegments != 1 || st.GCReclaimed == 0 {
		t.Fatalf("gc stats = %+v", st)
	}
}

func TestRecoveryRequiredBeforeAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendOne(t, l, "k", "m", "v", false)
	l.Close()

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, _, err := l2.Append([]byte("k2"), nil, false, 0, func(Ptr, uint64) ([]byte, error) { return nil, nil }); !errors.Is(err, ErrRecoveryRequired) {
		t.Fatalf("append before replay: %v", err)
	}
	if _, err := l2.Replay(func(Ptr, Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	appendOne(t, l2, "k2", "m", "v", false)
}

func TestReplayResumesSeqAndPlacement(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Config{Dir: dir, SegmentBytes: 256})
	var lastPtr Ptr
	for i := 0; i < 10; i++ {
		lastPtr, _ = appendOne(t, l, fmt.Sprintf("key-%d", i), "meta", "some-payload-bytes", false)
	}
	l.Close()

	l2, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var seen []uint64
	st, err := l2.Replay(func(ptr Ptr, rec Record) error {
		seen = append(seen, rec.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 || st.MaxSeq != 10 || st.Torn != nil {
		t.Fatalf("replay stats = %+v", st)
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("replay order broken: %v", seen)
		}
	}
	// New appends continue above the recovered sequence and don't collide
	// with recovered placements.
	p, seq := appendOne(t, l2, "new", "meta", "v", false)
	if seq != 11 {
		t.Fatalf("resumed seq = %d", seq)
	}
	if p.Segment == lastPtr.Segment && p.Offset <= lastPtr.Offset {
		t.Fatalf("new record placed before recovered tail: %v vs %v", p, lastPtr)
	}
}

func TestCrashMidGroupCommitTruncatesTail(t *testing.T) {
	fs := NewMemFS(42)
	dir := "/log"
	l, err := Open(Config{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// Acked writes: durable by the time Append returns.
	var acked []Ptr
	for i := 0; i < 20; i++ {
		p, _ := appendOne(t, l, fmt.Sprintf("acked-%02d", i), "meta", "durable-payload", false)
		acked = append(acked, p)
	}
	// Unacked writes: bytes down, fsync never happened. Bypass the group
	// commit by writing through the log's internals — simulate by writing
	// garbage at the tail of the active segment file, as a crashed
	// in-flight batch would leave.
	w, err := fs.OpenWrite(l.segmentPath(l.Stats().ActiveSegment))
	if err != nil {
		t.Fatal(err)
	}
	size, _ := w.Size()
	if _, err := w.WriteAt(encodeRecord(nil, 21, false, []byte("unacked"), []byte("meta"), []byte("in-flight")), size); err != nil {
		t.Fatal(err)
	}

	fs.Crash()

	l2, err := Open(Config{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := make(map[string]bool)
	st, err := l2.Replay(func(ptr Ptr, rec Record) error {
		got[string(rec.Key)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range acked {
		key := fmt.Sprintf("acked-%02d", i)
		if !got[key] {
			t.Fatalf("acked record %q (at %v) lost after crash", key, p)
		}
	}
	if st.Records < uint64(len(acked)) {
		t.Fatalf("replayed %d records, want >= %d", st.Records, len(acked))
	}
	if st.Torn != nil && !errors.Is(st.Torn, ErrTornSegment) {
		t.Fatalf("torn error not typed: %v", st.Torn)
	}
}

func TestCrashMidRotationKeepsAckedRecords(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fs := NewMemFS(seed)
			dir := "/log"
			l, err := Open(Config{Dir: dir, SegmentBytes: 200, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			// Enough appends to rotate several times; every one is acked, so
			// every one must survive the crash.
			var keys []string
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("key-%02d", i)
				appendOne(t, l, k, "meta", "0123456789abcdef0123456789abcdef", false)
				keys = append(keys, k)
			}
			// Leave an unsynced in-flight record at the tail, then crash.
			w, _ := fs.OpenWrite(l.segmentPath(l.Stats().ActiveSegment))
			size, _ := w.Size()
			w.WriteAt(encodeRecord(nil, 99, false, []byte("tail"), nil, bytes.Repeat([]byte("x"), 64)), size)
			fs.Crash()

			l2, err := Open(Config{Dir: dir, SegmentBytes: 200, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			got := make(map[string]bool)
			if _, err := l2.Replay(func(ptr Ptr, rec Record) error {
				got[string(rec.Key)] = true
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if !got[k] {
					t.Fatalf("acked %q lost (seed %d)", k, seed)
				}
			}
		})
	}
}

func TestReplayTruncatesMidChainDamageAndContinues(t *testing.T) {
	fs := NewMemFS(7)
	dir := "/log"
	l, _ := Open(Config{Dir: dir, SegmentBytes: 128, FS: fs})
	appendOne(t, l, "first", "m", string(make([]byte, 100)), false)  // seg 1
	appendOne(t, l, "second", "m", string(make([]byte, 100)), false) // seg 2
	appendOne(t, l, "third", "m", string(make([]byte, 100)), false)  // seg 3
	l.Close()

	// Corrupt a record in the middle segment (not the tail).
	w, err := fs.OpenWrite(dir + "/" + segmentName(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, 30); err != nil {
		t.Fatal(err)
	}
	w.Sync()

	l2, err := Open(Config{Dir: dir, SegmentBytes: 128, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := make(map[string]bool)
	st, err := l2.Replay(func(ptr Ptr, rec Record) error {
		got[string(rec.Key)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got["first"] || !got["third"] {
		t.Fatalf("replay did not continue past damaged segment: %v", got)
	}
	if got["second"] {
		t.Fatal("damaged record should have been dropped")
	}
	if st.TornSegments != 1 || !errors.Is(st.Torn, ErrTornSegment) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Config{Dir: dir})
	appendOne(t, l, "k", "m", "v", false)
	l.Close()

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	tamper := errors.New("sealed metadata failed authentication")
	if _, err := l2.Replay(func(Ptr, Record) error { return tamper }); !errors.Is(err, tamper) {
		t.Fatalf("replay error = %v", err)
	}
}

func TestIterateSegment(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		appendOne(t, l, fmt.Sprintf("k%d", i), "m", "v", false)
	}
	var n int
	if err := l.IterateSegment(1, func(ptr Ptr, rec Record) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("iterated %d records", n)
	}
	if err := l.IterateSegment(99, func(Ptr, Record) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing segment: %v", err)
	}
}

// failSyncFS wraps MemFS so tests can make file fsyncs fail on demand:
// the committer must wedge the log at the first failure.
type failSyncFS struct {
	*MemFS
	fail atomic.Bool
}

func (f *failSyncFS) OpenWrite(path string) (File, error) {
	h, err := f.MemFS.OpenWrite(path)
	if err != nil {
		return nil, err
	}
	return failSyncFile{File: h, fs: f}, nil
}

type failSyncFile struct {
	File
	fs *failSyncFS
}

func (h failSyncFile) Sync() error {
	if h.fs.fail.Load() {
		return errors.New("injected fsync failure")
	}
	return h.File.Sync()
}

func TestFsyncFailureWedgesLog(t *testing.T) {
	fs := &failSyncFS{MemFS: NewMemFS(1)}
	l, err := Open(Config{Dir: "/log", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendOne(t, l, "ok", "m", "v", false)

	fs.fail.Store(true)
	if _, _, err := l.Append([]byte("lost"), []byte("v"), false, 1, func(Ptr, uint64) ([]byte, error) {
		return []byte("m"), nil
	}); err == nil {
		t.Fatal("append whose fsync failed must not ack")
	}
	fs.fail.Store(false)
	// The log must stay wedged even though the disk recovered: pages
	// queued before the failed fsync may never reach disk, so a later
	// acked append could sit behind a torn record and be truncated away
	// by replay.
	if _, _, err := l.Append([]byte("after"), []byte("v"), false, 1, func(Ptr, uint64) ([]byte, error) {
		return []byte("m"), nil
	}); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after failed fsync: got %v, want ErrWedged", err)
	}
}

// errFile stands in for the read handle a concurrent RemoveSegment
// closed while a ReadAt was in flight.
type errFile struct{}

func (errFile) ReadAt([]byte, int64) (int, error)  { return 0, errors.New("file already closed") }
func (errFile) WriteAt([]byte, int64) (int, error) { return 0, errors.New("file already closed") }
func (errFile) Sync() error                        { return errors.New("file already closed") }
func (errFile) Close() error                       { return nil }
func (errFile) Size() (int64, error)               { return 0, errors.New("file already closed") }

func TestReadAtRemovedSegmentIsNotFound(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p1, _ := appendOne(t, l, "a", "m", string(make([]byte, 64)), false)
	appendOne(t, l, "b", "m", string(make([]byte, 64)), false) // rotation: seg 1 sealed
	if err := l.RemoveSegment(p1.Segment); err != nil {
		t.Fatal(err)
	}
	// Simulate the race: a reader that grabbed its cached handle just
	// before RemoveSegment closed it.
	l.readMu.Lock()
	l.readers[p1.Segment] = errFile{}
	l.readMu.Unlock()
	if _, err := l.ReadAt(p1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read through closed handle of removed segment: %v, want ErrNotFound", err)
	}
}

// countSyncDirFS counts directory flushes so tests can pin where the
// log reports directory-entry durability.
type countSyncDirFS struct {
	*MemFS
	dirSyncs atomic.Int32
}

func (f *countSyncDirFS) SyncDir(dir string) error {
	f.dirSyncs.Add(1)
	return f.MemFS.SyncDir(dir)
}

func TestSegmentLifecycleSyncsDir(t *testing.T) {
	fs := &countSyncDirFS{MemFS: NewMemFS(2)}
	l, err := Open(Config{Dir: "/log", SegmentBytes: 64, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p1, _ := appendOne(t, l, "a", "m", string(make([]byte, 64)), false)
	if n := fs.dirSyncs.Load(); n < 1 {
		t.Fatalf("creating the first segment issued %d dir syncs, want >= 1", n)
	}
	appendOne(t, l, "b", "m", string(make([]byte, 64)), false) // rotation
	if n := fs.dirSyncs.Load(); n < 2 {
		t.Fatalf("rotation issued %d dir syncs total, want >= 2", n)
	}
	l.MarkDead(p1)
	before := fs.dirSyncs.Load()
	if err := l.RemoveSegment(p1.Segment); err != nil {
		t.Fatal(err)
	}
	if fs.dirSyncs.Load() <= before {
		t.Fatal("segment removal did not sync the directory")
	}
}

func TestTombstoneRoundtrip(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ptr, _ := appendOne(t, l, "gone", "meta", "", true)
	rec, err := l.ReadAt(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Tombstone || len(rec.Payload) != 0 {
		t.Fatalf("tombstone mismatch: %+v", rec)
	}
}
