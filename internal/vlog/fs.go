package vlog

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS abstracts the filesystem under the log so tests can inject
// crash-consistent fault models (see MemFS). The default is the OS.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenWrite opens path read-write, creating it if absent.
	OpenWrite(path string) (File, error)
	// OpenRead opens path read-only.
	OpenRead(path string) (File, error)
	// Remove deletes path.
	Remove(path string) error
	// List returns the file names (not paths) in dir.
	List(dir string) ([]string, error)
	// Truncate shrinks path to size bytes (torn-tail repair) and makes
	// the new size durable.
	Truncate(path string, size int64) error
	// SyncDir flushes dir's entries to stable storage, so a crash
	// cannot drop a created segment (whose contents were fsynced) or
	// resurrect a removed one.
	SyncDir(dir string) error
}

// File is the per-file surface the log needs.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
	// Size returns the file's current length.
	Size() (int64, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// OpenWrite implements FS.
func (OSFS) OpenWrite(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenRead implements FS.
func (OSFS) OpenRead(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Truncate implements FS: the shrink is fsynced before returning, so a
// crash cannot undo a torn-tail repair the caller already acted on.
func (OSFS) Truncate(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// osFile adapts *os.File to File.
type osFile struct{ *os.File }

// Size implements File.
func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MemFS is an in-memory filesystem with a crash model: Sync marks a
// file's bytes durable, and Crash discards everything after each file's
// durable prefix except a seeded, possibly-garbled fragment of the
// unsynced tail — the torn write a kill -9 mid-group-commit leaves
// behind. Tests point two consecutive Log instances at one MemFS to
// simulate crash and recovery of the same disk.
type MemFS struct {
	mu    sync.Mutex
	rng   *rand.Rand
	files map[string]*memFile
}

// memFile is one in-memory file: buf is the live contents, synced the
// crash-durable prefix length.
type memFile struct {
	buf    []byte
	synced int
}

// NewMemFS creates a MemFS whose crash behaviour is driven by seed.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{rng: rand.New(rand.NewSource(seed)), files: make(map[string]*memFile)}
}

// Crash simulates kill -9: for every file, bytes beyond the last Sync
// survive only partially — a seeded prefix of the unsynced tail, with
// the byte at the tear garbled half the time. Returns the number of
// files that lost bytes.
func (m *MemFS) Crash() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	torn := 0
	for _, f := range m.files {
		if len(f.buf) <= f.synced {
			continue
		}
		unsynced := len(f.buf) - f.synced
		keep := 0
		if unsynced > 0 {
			keep = m.rng.Intn(unsynced + 1)
		}
		if keep < unsynced {
			torn++
		}
		f.buf = f.buf[:f.synced+keep]
		if keep > 0 && m.rng.Intn(2) == 0 {
			f.buf[len(f.buf)-1] ^= 0x5a
		}
		f.synced = len(f.buf)
	}
	return torn
}

// MkdirAll implements FS (directories are implicit in MemFS).
func (m *MemFS) MkdirAll(dir string) error { return nil }

// SyncDir implements FS. MemFS's crash model has no directory entries
// — files either exist or don't, independent of any dir flush — so this
// is a no-op; the OSFS implementation is where the dir fsync matters.
func (m *MemFS) SyncDir(dir string) error { return nil }

// OpenWrite implements FS.
func (m *MemFS) OpenWrite(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		f = &memFile{}
		m.files[path] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

// OpenRead implements FS.
func (m *MemFS) OpenRead(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	return &memHandle{fs: m, f: f}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	delete(m.files, path)
	return nil
}

// List implements FS.
func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == filepath.Clean(dir) {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", path, os.ErrNotExist)
	}
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("memfs: truncate %s beyond length", path)
	}
	f.buf = f.buf[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs *MemFS
	f  *memFile
}

// ReadAt implements io.ReaderAt.
func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if off >= int64(len(h.f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt.
func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(h.f.buf)) {
		grown := make([]byte, end)
		copy(grown, h.f.buf)
		h.f.buf = grown
	}
	copy(h.f.buf[off:end], p)
	return len(p), nil
}

// Sync implements File: everything written so far becomes durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = len(h.f.buf)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error { return nil }

// Size implements File.
func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return int64(len(h.f.buf)), nil
}
