// Package audit is Precursor's tamper-evident security event log.
//
// Every integrity-relevant detection the system makes — attestation
// failures, control-data MAC failures, oid replay rejections, snapshot
// rollback detections, Byzantine read failovers, breaker trips, quorum
// shortfalls, repair-session anomalies — is appended to a Log as one
// Record. Records form a hash chain: each record's hash covers the
// previous record's hash plus a canonical binary encoding of its own
// fields, so flipping a single bit anywhere in the exported log breaks
// verification. On top of the chain, a keyed Log MACs every record hash
// and the chain head with HMAC-SHA256 under a key derived from the
// enclave's sealing key (see core.NewServer), so truncating the log and
// rewriting the head is detectable too: the untrusted host holding the
// log cannot forge a head MAC for a shortened chain.
//
// The Log is bounded. When it overflows, the oldest records are dropped
// but their final hash is retained as the export's base, so a partial
// log still verifies end-to-end from its base to its head.
//
// Security note: records carry event kinds, actor names (addresses,
// client ids), timestamps and error text only — never keys, values, or
// key material. The MAC key itself never appears in a Record or Export.
package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event kinds. Each names one class of security-relevant detection; the
// set is the union of the server-side verify/apply checks and the
// cluster client's replication safeguards.
const (
	// KindAttestFail records a failed remote-attestation handshake
	// (data-path or repair-session bootstrap).
	KindAttestFail = "attest_fail"
	// KindAuthFail records control data that failed AEAD authentication
	// — a forged or corrupted request MAC.
	KindAuthFail = "auth_fail"
	// KindReplay records a rejected stale/duplicate oid (Algorithm 2's
	// replay check).
	KindReplay = "replay"
	// KindRollback records a sealed snapshot rejected because its
	// trusted counter was behind — a rollback or fork attack.
	KindRollback = "rollback"
	// KindSnapshotAuth records a sealed snapshot that failed
	// authentication under the sealing key.
	KindSnapshotAuth = "snapshot_auth"
	// KindByzantineFailover records a replicated read that failed over
	// because a replica served a payload whose MAC did not verify.
	KindByzantineFailover = "byzantine_failover"
	// KindBreakerTrip records a replica health breaker opening.
	KindBreakerTrip = "breaker_trip"
	// KindQuorumShortfall records a replicated write that missed its
	// write quorum.
	KindQuorumShortfall = "quorum_shortfall"
	// KindRepairAnomaly records an aborted or failed anti-entropy repair
	// run or repair-session request.
	KindRepairAnomaly = "repair_anomaly"
	// KindReadFailover records a replicated read that succeeded only
	// after failing over from its preferred replica (for any reason —
	// Byzantine failovers are additionally recorded as their own kind).
	KindReadFailover = "read_failover"
)

// DefaultCapacity bounds a Log's retained records when New is called
// with capacity <= 0.
const DefaultCapacity = 8192

// genesisSeed is hashed to produce the chain's genesis hash — the
// base of a log that has never dropped a record.
const genesisSeed = "precursor-audit-genesis-v1"

// hashSize is the chain's hash and MAC width (SHA-256).
const hashSize = sha256.Size

// Verification errors.
var (
	// ErrChainBroken reports a record whose hash does not extend its
	// predecessor — a bit flip, a reorder, or a forged record.
	ErrChainBroken = errors.New("audit: hash chain broken")
	// ErrBadMAC reports a record or head MAC that does not verify under
	// the log's key — tampering by a party without the enclave key.
	ErrBadMAC = errors.New("audit: MAC verification failed")
	// ErrTruncated reports an export whose head does not match its last
	// record — records were cut off the end.
	ErrTruncated = errors.New("audit: log truncated")
	// ErrBadExport reports a structurally invalid export.
	ErrBadExport = errors.New("audit: malformed export")
)

// Record is one security event on the chain. Hash and MAC are filled by
// the Log; callers populate the descriptive fields only.
type Record struct {
	// Seq is the record's position on the chain, starting at 1.
	Seq uint64 `json:"seq"`
	// TS is the event time in Unix nanoseconds.
	TS int64 `json:"ts"`
	// Kind classifies the event (the Kind* constants).
	Kind string `json:"kind"`
	// Actor names the principal the event concerns: a shard or replica
	// address, a group name, or empty for a local server event.
	Actor string `json:"actor,omitempty"`
	// Client is the server-assigned client id, when known.
	Client uint32 `json:"client,omitempty"`
	// Oid is the operation id involved, when known.
	Oid uint64 `json:"oid,omitempty"`
	// Detail is a short human-readable description (error text). Never
	// keys, values or key material.
	Detail string `json:"detail,omitempty"`
	// Hash chains this record to its predecessor:
	// SHA256(prevHash || canonical encoding of the fields above).
	Hash []byte `json:"hash"`
	// MAC is HMAC-SHA256(key, Hash) when the log is keyed.
	MAC []byte `json:"mac,omitempty"`
}

// encode returns the record's canonical binary encoding — the bytes the
// chain hash covers. Length-prefixed fields make the encoding
// injective, so no two distinct records encode alike.
func (r *Record) encode() []byte {
	b := make([]byte, 0, 64+len(r.Kind)+len(r.Actor)+len(r.Detail))
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.TS))
	b = binary.LittleEndian.AppendUint32(b, r.Client)
	b = binary.LittleEndian.AppendUint64(b, r.Oid)
	for _, s := range []string{r.Kind, r.Actor, r.Detail} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	return b
}

// Export is a verifiable snapshot of the chain: the base the surviving
// records chain from (the genesis hash unless the log overflowed), the
// records themselves, and the authenticated head.
type Export struct {
	// BaseSeq is the sequence number of the last dropped record (0 when
	// nothing has been dropped).
	BaseSeq uint64 `json:"base_seq"`
	// BaseHash is the chain hash the first retained record extends.
	BaseHash []byte `json:"base_hash"`
	// Records are the retained records, oldest first.
	Records []Record `json:"records"`
	// HeadSeq is the last record's sequence number (BaseSeq if empty).
	HeadSeq uint64 `json:"head_seq"`
	// HeadHash is the chain head — the last record's hash.
	HeadHash []byte `json:"head_hash"`
	// HeadMAC is HMAC-SHA256(key, HeadHash || HeadSeq) when keyed; it is
	// what makes truncation (dropping records off the end and rewriting
	// the head) detectable.
	HeadMAC []byte `json:"head_mac,omitempty"`
	// Dropped counts records lost to the capacity bound.
	Dropped uint64 `json:"dropped,omitempty"`
}

// Genesis returns the chain's genesis hash, the base of every log that
// has never overflowed.
func Genesis() []byte {
	h := sha256.Sum256([]byte(genesisSeed))
	return h[:]
}

// Log is a bounded, append-only, hash-chained security event log. All
// methods are safe for concurrent use; a nil *Log is inert, so emission
// sites pay one branch when auditing is disabled.
type Log struct {
	mu       sync.Mutex
	key      []byte // HMAC key; nil until SetKey
	capacity int
	records  []Record
	headSeq  uint64
	headHash []byte
	baseSeq  uint64
	baseHash []byte
	dropped  uint64
	counts   map[string]uint64
	lastTS   int64
}

// New creates a Log retaining at most capacity records (DefaultCapacity
// if <= 0). The log starts unkeyed: the chain is maintained from the
// first record, and MACs appear once SetKey is called (typically by
// core.NewServer, which derives the key from the enclave sealing key).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{
		capacity: capacity,
		headHash: Genesis(),
		baseHash: Genesis(),
		counts:   make(map[string]uint64),
	}
}

// SetKey installs the HMAC key (set-once; later calls are ignored so a
// log shared across servers keeps one consistent key). Record and head
// MACs are computed at export time, so a key installed after events
// were appended still covers them.
func (l *Log) SetKey(key []byte) {
	if l == nil || len(key) == 0 {
		return
	}
	l.mu.Lock()
	if l.key == nil {
		l.key = append([]byte(nil), key...)
	}
	l.mu.Unlock()
}

// Key returns a copy of the installed HMAC key (nil if unkeyed). The
// offline verifier needs it; handle it like the secret it is.
func (l *Log) Key() []byte {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.key...)
}

// Add appends one event to the chain. The caller fills the descriptive
// fields (Kind, Actor, Client, Oid, Detail); Seq, TS, and Hash are
// assigned here. Nil-log and empty-kind calls are no-ops.
func (l *Log) Add(r Record) {
	if l == nil || r.Kind == "" {
		return
	}
	now := time.Now().UnixNano()
	l.mu.Lock()
	r.Seq = l.headSeq + 1
	r.TS = now
	r.MAC = nil
	h := sha256.New()
	h.Write(l.headHash)
	h.Write(r.encode())
	r.Hash = h.Sum(nil)
	l.headSeq = r.Seq
	l.headHash = r.Hash
	l.records = append(l.records, r)
	if len(l.records) > l.capacity {
		// Drop the oldest record but keep its hash as the new base, so
		// the retained suffix still verifies end-to-end.
		old := l.records[0]
		l.baseSeq = old.Seq
		l.baseHash = old.Hash
		l.records = l.records[1:]
		l.dropped++
	}
	l.counts[r.Kind]++
	l.lastTS = now
	l.mu.Unlock()
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Dropped counts records lost to the capacity bound.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// CountsByKind returns per-kind event totals over the log's lifetime
// (dropped records included).
func (l *Log) CountsByKind() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// LastEventTime returns when the most recent event was recorded (zero
// time if the log is empty). /healthz surfaces its age.
func (l *Log) LastEventTime() time.Time {
	if l == nil {
		return time.Time{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastTS == 0 {
		return time.Time{}
	}
	return time.Unix(0, l.lastTS)
}

// Export snapshots the chain for transport: retained records (with MACs
// when keyed) plus the authenticated head.
func (l *Log) Export() *Export {
	if l == nil {
		return &Export{BaseHash: Genesis(), HeadHash: Genesis()}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := &Export{
		BaseSeq:  l.baseSeq,
		BaseHash: append([]byte(nil), l.baseHash...),
		Records:  make([]Record, len(l.records)),
		HeadSeq:  l.headSeq,
		HeadHash: append([]byte(nil), l.headHash...),
		Dropped:  l.dropped,
	}
	copy(e.Records, l.records)
	if l.key != nil {
		for i := range e.Records {
			e.Records[i].MAC = macOf(l.key, e.Records[i].Hash)
		}
		e.HeadMAC = headMAC(l.key, e.HeadHash, e.HeadSeq)
	}
	return e
}

// WriteJSON writes the export as indented JSON — the payload served on
// GET /debug/audit and consumed by `precursor-cli audit verify`.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Export())
}

// Verify re-verifies the log's own chain (the /healthz self-check).
// An in-memory chain can only fail this if process memory was corrupted
// — the check exists so the serving path and the offline verifier agree
// on one definition of a valid chain.
func (l *Log) Verify() error {
	if l == nil {
		return nil
	}
	_, err := VerifyExport(l.Export(), l.Key())
	return err
}

// ReadExport parses an export previously produced by WriteJSON.
func ReadExport(r io.Reader) (*Export, error) {
	var e Export
	dec := json.NewDecoder(r)
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadExport, err)
	}
	return &e, nil
}

// VerifyExport checks an export end-to-end and returns the number of
// records verified. With a nil key only the hash chain and head linkage
// are checked — bit flips and reorders are caught, but a truncated
// chain with a consistently rewritten head is not. With the log's key,
// record MACs and the head MAC are verified too, which closes the
// truncation hole: the holder of the log cannot re-MAC a shorter head.
func VerifyExport(e *Export, key []byte) (int, error) {
	if e == nil || len(e.BaseHash) != hashSize || len(e.HeadHash) != hashSize {
		return 0, ErrBadExport
	}
	prev := e.BaseHash
	seq := e.BaseSeq
	for i := range e.Records {
		r := &e.Records[i]
		if r.Seq != seq+1 {
			return i, fmt.Errorf("%w: record %d has seq %d, want %d (reordered or dropped)", ErrChainBroken, i, r.Seq, seq+1)
		}
		h := sha256.New()
		h.Write(prev)
		h.Write(r.encode())
		want := h.Sum(nil)
		if !hmac.Equal(want, r.Hash) {
			return i, fmt.Errorf("%w: record seq %d hash mismatch", ErrChainBroken, r.Seq)
		}
		if key != nil && !hmac.Equal(macOf(key, r.Hash), r.MAC) {
			return i, fmt.Errorf("%w: record seq %d", ErrBadMAC, r.Seq)
		}
		prev = r.Hash
		seq = r.Seq
	}
	if e.HeadSeq != seq {
		return len(e.Records), fmt.Errorf("%w: head seq %d, chain ends at %d", ErrTruncated, e.HeadSeq, seq)
	}
	if !hmac.Equal(prev, e.HeadHash) {
		return len(e.Records), fmt.Errorf("%w: head hash does not match last record", ErrTruncated)
	}
	if key != nil && !hmac.Equal(headMAC(key, e.HeadHash, e.HeadSeq), e.HeadMAC) {
		return len(e.Records), fmt.Errorf("%w: head", ErrBadMAC)
	}
	return len(e.Records), nil
}

// macOf computes the per-record MAC: HMAC-SHA256(key, hash).
func macOf(key, hash []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(hash)
	return m.Sum(nil)
}

// headMAC authenticates the chain head together with its sequence
// number, so a rewound head cannot reuse an old head's MAC.
func headMAC(key, headHash []byte, headSeq uint64) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(headHash)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], headSeq)
	m.Write(b[:])
	return m.Sum(nil)
}
