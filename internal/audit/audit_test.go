package audit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

func fill(l *Log, n int) {
	kinds := []string{KindAuthFail, KindReplay, KindBreakerTrip, KindQuorumShortfall}
	for i := 0; i < n; i++ {
		l.Add(Record{
			Kind:   kinds[i%len(kinds)],
			Actor:  fmt.Sprintf("replica-%d", i%3),
			Client: uint32(i),
			Oid:    uint64(i * 11),
			Detail: "detected during test",
		})
	}
}

func TestChainVerifiesEndToEnd(t *testing.T) {
	l := New(0)
	l.SetKey(testKey())
	fill(l, 50)
	e := l.Export()
	n, err := VerifyExport(e, testKey())
	if err != nil {
		t.Fatalf("VerifyExport: %v", err)
	}
	if n != 50 {
		t.Fatalf("verified %d records, want 50", n)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("self-verify: %v", err)
	}
	// Unkeyed verification of a keyed export also passes (chain only).
	if _, err := VerifyExport(e, nil); err != nil {
		t.Fatalf("unkeyed verify: %v", err)
	}
}

// TestKeyAfterAppend covers the server bootstrap order: events can land
// before the enclave key is derived, and the export is still fully
// MAC'd.
func TestKeyAfterAppend(t *testing.T) {
	l := New(0)
	fill(l, 10)
	l.SetKey(testKey())
	fill(l, 5)
	if _, err := VerifyExport(l.Export(), testKey()); err != nil {
		t.Fatalf("verify after late SetKey: %v", err)
	}
	// SetKey is set-once: a second key must not clobber the first.
	l.SetKey([]byte("different-key-entirely-32-bytes!"))
	if !bytes.Equal(l.Key(), testKey()) {
		t.Fatal("SetKey overwrote an installed key")
	}
}

// TestTamperBitFlip flips a single byte in each mutable field of each
// record in turn and requires verification to fail every time.
func TestTamperBitFlip(t *testing.T) {
	l := New(0)
	l.SetKey(testKey())
	fill(l, 8)
	clean := l.Export()
	if _, err := VerifyExport(clean, testKey()); err != nil {
		t.Fatalf("clean export must verify: %v", err)
	}
	reExport := func() *Export {
		var e Export
		b, _ := json.Marshal(clean)
		_ = json.Unmarshal(b, &e)
		return &e
	}
	for i := range clean.Records {
		mutations := []struct {
			name string
			mut  func(e *Export)
		}{
			{"kind", func(e *Export) { e.Records[i].Kind = "x" + e.Records[i].Kind[1:] }},
			{"actor", func(e *Export) { e.Records[i].Actor += "!" }},
			{"detail", func(e *Export) { e.Records[i].Detail += "." }},
			{"client", func(e *Export) { e.Records[i].Client ^= 1 }},
			{"oid", func(e *Export) { e.Records[i].Oid ^= 1 }},
			{"ts", func(e *Export) { e.Records[i].TS ^= 1 }},
			{"hash", func(e *Export) { e.Records[i].Hash[0] ^= 0x01 }},
			{"mac", func(e *Export) { e.Records[i].MAC[0] ^= 0x01 }},
		}
		for _, m := range mutations {
			e := reExport()
			m.mut(e)
			if _, err := VerifyExport(e, testKey()); err == nil {
				t.Errorf("record %d: flipped %s went undetected", i, m.name)
			}
		}
	}
}

// TestTamperTruncation drops records off the end and requires the keyed
// verifier to reject it, even when the head fields are rewritten to
// look consistent with the shortened chain.
func TestTamperTruncation(t *testing.T) {
	l := New(0)
	l.SetKey(testKey())
	fill(l, 12)
	e := l.Export()

	// Naive truncation: records cut, head untouched.
	cut := *e
	cut.Records = e.Records[:8]
	if _, err := VerifyExport(&cut, testKey()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("naive truncation: got %v, want ErrTruncated", err)
	}

	// Sophisticated truncation: head rewritten to match the shortened
	// chain. Without the key the chain looks fine; the head MAC is what
	// catches it.
	cut2 := *e
	cut2.Records = e.Records[:8]
	cut2.HeadSeq = cut2.Records[7].Seq
	cut2.HeadHash = cut2.Records[7].Hash
	if _, err := VerifyExport(&cut2, testKey()); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("head-rewrite truncation: got %v, want ErrBadMAC", err)
	}
	// Documented limitation: unkeyed verification cannot see it.
	if _, err := VerifyExport(&cut2, nil); err != nil {
		t.Fatalf("unkeyed verify of consistent truncation should pass (keyless limitation): %v", err)
	}
}

// TestTamperReorder swaps two records and requires detection.
func TestTamperReorder(t *testing.T) {
	l := New(0)
	l.SetKey(testKey())
	fill(l, 6)
	e := l.Export()
	e.Records[1], e.Records[4] = e.Records[4], e.Records[1]
	if _, err := VerifyExport(e, testKey()); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("reorder: got %v, want ErrChainBroken", err)
	}
}

// TestCapacityOverflow checks that a full log drops its oldest records
// yet the retained suffix still verifies from the advanced base.
func TestCapacityOverflow(t *testing.T) {
	l := New(16)
	l.SetKey(testKey())
	fill(l, 40)
	if l.Len() != 16 {
		t.Fatalf("Len = %d, want 16", l.Len())
	}
	if l.Dropped() != 24 {
		t.Fatalf("Dropped = %d, want 24", l.Dropped())
	}
	e := l.Export()
	if e.BaseSeq != 24 {
		t.Fatalf("BaseSeq = %d, want 24", e.BaseSeq)
	}
	if n, err := VerifyExport(e, testKey()); err != nil || n != 16 {
		t.Fatalf("overflowed log verify: n=%d err=%v", n, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := New(0)
	l.SetKey(testKey())
	fill(l, 9)
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := VerifyExport(e, testKey()); err != nil || n != 9 {
		t.Fatalf("round-tripped verify: n=%d err=%v", n, err)
	}
}

func TestCountsAndLastEvent(t *testing.T) {
	l := New(4)
	before := time.Now()
	fill(l, 10)
	c := l.CountsByKind()
	var total uint64
	for _, v := range c {
		total += v
	}
	if total != 10 {
		t.Fatalf("counts total %d, want 10 (drops must not erase counts)", total)
	}
	if got := l.LastEventTime(); got.Before(before) {
		t.Fatalf("LastEventTime %v predates the events", got)
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	l.Add(Record{Kind: KindReplay})
	l.SetKey(testKey())
	if l.Len() != 0 || l.Dropped() != 0 || l.Key() != nil {
		t.Fatal("nil log must be fully inert")
	}
	if !l.LastEventTime().IsZero() {
		t.Fatal("nil log LastEventTime must be zero")
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("nil log Verify: %v", err)
	}
	e := l.Export()
	if n, err := VerifyExport(e, nil); err != nil || n != 0 {
		t.Fatalf("nil log export verify: n=%d err=%v", n, err)
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := New(128)
	l.SetKey(testKey())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Add(Record{Kind: KindReplay, Actor: fmt.Sprintf("g%d", g), Oid: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if _, err := VerifyExport(l.Export(), testKey()); err != nil {
		t.Fatalf("chain broken under concurrent appends: %v", err)
	}
	e := l.Export()
	if e.HeadSeq != 400 {
		t.Fatalf("HeadSeq = %d, want 400", e.HeadSeq)
	}
}

// FuzzAuditChain builds a small chain, applies a fuzz-chosen mutation to
// its JSON export, and checks the invariant: a byte-for-byte identical
// export verifies; any export that re-parses to different verified
// content either fails verification or is identical to the original.
func FuzzAuditChain(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint8(0))
	f.Add(uint8(3), uint16(77), uint8(0xff))
	f.Add(uint8(2), uint16(1000), uint8(1))
	f.Fuzz(func(t *testing.T, nRecords uint8, pos uint16, flip uint8) {
		l := New(64)
		l.SetKey(testKey())
		kinds := []string{KindAttestFail, KindRollback, KindByzantineFailover}
		for i := 0; i < int(nRecords%32)+1; i++ {
			l.Add(Record{Kind: kinds[i%len(kinds)], Actor: "fuzz", Oid: uint64(i)})
		}
		var buf bytes.Buffer
		if err := l.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		orig := append([]byte(nil), raw...)

		// The untouched export must verify.
		e, err := ReadExport(bytes.NewReader(orig))
		if err != nil {
			t.Fatalf("clean export unreadable: %v", err)
		}
		if _, err := VerifyExport(e, testKey()); err != nil {
			t.Fatalf("clean export failed verification: %v", err)
		}

		if flip == 0 {
			return
		}
		mutated := append([]byte(nil), orig...)
		mutated[int(pos)%len(mutated)] ^= flip
		me, err := ReadExport(bytes.NewReader(mutated))
		if err != nil {
			return // mutation broke the JSON — rejected, fine
		}
		if _, err := VerifyExport(me, testKey()); err != nil {
			return // mutation detected — the property we want
		}
		// Verification passed: the mutation must have been semantically
		// neutral (whitespace, JSON escaping). Re-encode both and compare.
		a, _ := json.Marshal(e)
		b, _ := json.Marshal(me)
		if !bytes.Equal(a, b) {
			t.Fatalf("mutated export verified but differs semantically (pos=%d flip=%#x)", pos, flip)
		}
	})
}
