// Package hist provides the latency histograms behind the evaluation's
// tail-latency CDFs (Figure 7) and breakdowns (Figure 8).
//
// The histogram uses logarithmic buckets (HdrHistogram-style: power-of-two
// magnitudes each split into 64 linear sub-buckets), giving ≤ ~1.6 % value
// error across nanoseconds-to-seconds without per-sample allocation.
package hist

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"
)

const subBucketBits = 6 // 64 linear sub-buckets per magnitude

// Histogram records durations in nanoseconds. The zero value is unusable;
// call New. Histogram is not safe for concurrent use; shard per worker and
// Merge.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// New creates an empty histogram.
func New() *Histogram {
	return &Histogram{
		counts: make([]uint64, (64-subBucketBits)<<subBucketBits),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	mag := bits.Len64(u >> subBucketBits) // 0 for small values
	sub := u >> uint(mag)                 // 0..(2^subBucketBits+...)-1
	idx := mag<<subBucketBits + int(sub)
	return idx
}

// bucketValue returns a representative (upper-bound) value for a bucket.
func bucketValue(idx int) int64 {
	mag := idx >> subBucketBits
	sub := idx & ((1 << subBucketBits) - 1)
	return int64(uint64(sub+1) << uint(mag))
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean sample.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min and Max return sample extremes.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with bucket resolution.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Quantiles is a flat snapshot of the histogram's standard quantile set,
// convenient for metrics export (plain values, no histogram pointer).
type Quantiles struct {
	// Count is the number of recorded samples; all other fields are zero
	// when it is zero.
	Count uint64
	// Sum is the total of all samples.
	Sum time.Duration
	// Min, Mean and Max summarize the sample range.
	Min, Mean, Max time.Duration
	// P50, P95, P99 and P999 are the standard export quantiles.
	P50, P95, P99, P999 time.Duration
}

// Quantiles snapshots the standard quantile set in one pass.
func (h *Histogram) Quantiles() Quantiles {
	if h.total == 0 {
		return Quantiles{}
	}
	return Quantiles{
		Count: h.total,
		Sum:   time.Duration(h.sum),
		Min:   h.Min(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// CDFPoint is one point of a cumulative distribution function.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns up to n points of the distribution, suitable for plotting
// Figure 7. Points are emitted at each non-empty bucket boundary and
// thinned to n.
func (h *Histogram) CDF(n int) []CDFPoint {
	if h.total == 0 || n <= 0 {
		return nil
	}
	var raw []CDFPoint
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		v := bucketValue(i)
		if v > h.max {
			v = h.max
		}
		raw = append(raw, CDFPoint{
			Latency:  time.Duration(v),
			Fraction: float64(seen) / float64(h.total),
		})
	}
	if len(raw) <= n {
		return raw
	}
	out := make([]CDFPoint, 0, n)
	step := float64(len(raw)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, raw[int(float64(i)*step+0.5)])
	}
	return out
}

// Summary formats the standard percentile row used in EXPERIMENTS.md.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Series is a named collection of histograms, e.g. one per value size.
type Series struct {
	names []string
	hists map[string]*Histogram
}

// NewSeries creates an empty series.
func NewSeries() *Series {
	return &Series{hists: make(map[string]*Histogram)}
}

// At returns (creating if needed) the named histogram.
func (s *Series) At(name string) *Histogram {
	h, ok := s.hists[name]
	if !ok {
		h = New()
		s.hists[name] = h
		s.names = append(s.names, name)
		sort.Strings(s.names)
	}
	return h
}

// Table renders the series as an aligned text table.
func (s *Series) Table() string {
	var b strings.Builder
	for _, name := range s.names {
		fmt.Fprintf(&b, "%-16s %s\n", name, s.hists[name].Summary())
	}
	return b.String()
}
