package hist

import (
	"sync"
	"testing"
	"time"
)

// TestShardedConcurrentRecord hammers one Sharded from many goroutines
// (run under -race) and checks no samples are lost and quantile snapshots
// taken mid-flight stay well-formed.
func TestShardedConcurrentRecord(t *testing.T) {
	const (
		workers   = 8
		perWorker = 5000
	)
	s := NewSharded(4) // fewer shards than workers: forces sharing
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Record(w, time.Duration(i%1000)*time.Microsecond)
			}
		}()
	}
	// Concurrent snapshots while recorders run: must not race or corrupt.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := s.Snapshot()
			if snap.Count() > workers*perWorker {
				t.Errorf("snapshot count %d exceeds total recorded %d", snap.Count(), workers*perWorker)
				return
			}
			q := snap.Quantiles()
			if q.P50 > q.P99 || q.P99 > q.Max {
				t.Errorf("quantiles out of order: %+v", q)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-done

	if got := s.Count(); got != workers*perWorker {
		t.Fatalf("Count() = %d, want %d", got, workers*perWorker)
	}
	snap := s.Snapshot()
	if snap.Count() != workers*perWorker {
		t.Fatalf("final snapshot count = %d, want %d", snap.Count(), workers*perWorker)
	}
	q := snap.Quantiles()
	if q.Count != workers*perWorker || q.Max < 990*time.Microsecond {
		t.Fatalf("unexpected quantiles: %+v", q)
	}
}

// TestShardedDefaults checks lazy allocation and the default shard count.
func TestShardedDefaults(t *testing.T) {
	s := NewSharded(0)
	if len(s.shards) != DefaultShards {
		t.Fatalf("default shards = %d, want %d", len(s.shards), DefaultShards)
	}
	if s.Count() != 0 {
		t.Fatalf("fresh sharded has count %d", s.Count())
	}
	if snap := s.Snapshot(); snap.Count() != 0 {
		t.Fatalf("fresh snapshot has count %d", snap.Count())
	}
	s.Record(-3, time.Millisecond) // negative worker index must not panic
	if s.Count() != 1 {
		t.Fatalf("count after one record = %d", s.Count())
	}
}

// TestQuantilesSnapshot checks the flat Quantiles view against the
// histogram's own accessors.
func TestQuantilesSnapshot(t *testing.T) {
	h := New()
	if q := h.Quantiles(); q != (Quantiles{}) {
		t.Fatalf("empty histogram quantiles = %+v, want zero", q)
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	q := h.Quantiles()
	if q.Count != 1000 || q.Min != h.Min() || q.Max != h.Max() || q.Mean != h.Mean() {
		t.Fatalf("quantiles mismatch: %+v", q)
	}
	if q.P50 != h.Quantile(0.50) || q.P999 != h.Quantile(0.999) {
		t.Fatalf("quantile fields mismatch: %+v", q)
	}
}
