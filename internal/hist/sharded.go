package hist

import (
	"sync"
	"time"
)

// DefaultShards is the shard count NewSharded uses when given n <= 0.
// It matches the server's default worker count so per-worker recording
// never contends.
const DefaultShards = 16

// Sharded is a histogram safe for concurrent recording: samples go into
// per-worker shards (each guarded by its own mutex, so recording from a
// stable worker index is effectively uncontended) and Snapshot merges
// the shards into one Histogram on demand.
//
// Shards allocate their Histogram lazily, so an idle Sharded — e.g. one
// of many per-stage histograms in a tracer that never sees a given
// stage — costs a few words, not a bucket array.
type Sharded struct {
	shards []shard
}

// shard is one lock-striped slice of a Sharded histogram.
type shard struct {
	mu sync.Mutex
	h  *Histogram
	// pad the shard out to its own cache line so adjacent shards'
	// mutexes don't false-share under concurrent recording.
	_ [64 - 16]byte
}

// NewSharded creates a sharded histogram with n shards (DefaultShards
// if n <= 0).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	return &Sharded{shards: make([]shard, n)}
}

// Record adds one sample to the worker-th shard (taken modulo the shard
// count, so any non-negative worker index is valid).
func (s *Sharded) Record(worker int, d time.Duration) {
	sh := &s.shards[uint(worker)%uint(len(s.shards))]
	sh.mu.Lock()
	if sh.h == nil {
		sh.h = New()
	}
	sh.h.Record(d)
	sh.mu.Unlock()
}

// Snapshot merges every shard into a fresh Histogram. The result is a
// point-in-time copy owned by the caller; the shards keep accumulating.
func (s *Sharded) Snapshot() *Histogram {
	out := New()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.h != nil {
			out.Merge(sh.h)
		}
		sh.mu.Unlock()
	}
	return out
}

// Count returns the total samples across shards (taking each shard's
// lock briefly, like Snapshot, but without merging bucket arrays).
func (s *Sharded) Count() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.h != nil {
			n += sh.h.Count()
		}
		sh.mu.Unlock()
	}
	return n
}
