package hist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not zero-valued")
	}
	if pts := h.CDF(10); pts != nil {
		t.Errorf("CDF of empty = %v", pts)
	}
}

func TestSingleSample(t *testing.T) {
	h := New()
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 42*time.Microsecond || h.Max() != 42*time.Microsecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	got := h.Quantile(0.99)
	if got < 42*time.Microsecond || got > 43*time.Microsecond {
		t.Errorf("p99 = %v", got)
	}
}

// TestQuantileAccuracy compares against exact quantiles of a known
// sample set; log-bucket error must stay below ~2%.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New()
	samples := make([]int64, 100000)
	for i := range samples {
		v := int64(rng.ExpFloat64() * 50000) // exponential, mean 50µs
		samples[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := int64(h.Quantile(q))
		if exact == 0 {
			continue
		}
		err := float64(got-exact) / float64(exact)
		if err < -0.05 || err > 0.05 {
			t.Errorf("q=%v: got %d exact %d (err %.2f%%)", q, got, exact, err*100)
		}
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 1000; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i*2) * time.Microsecond)
	}
	total := New()
	total.Merge(a)
	total.Merge(b)
	if total.Count() != 2000 {
		t.Errorf("count = %d", total.Count())
	}
	if total.Max() != b.Max() {
		t.Errorf("max = %v", total.Max())
	}
	if total.Min() != a.Min() {
		t.Errorf("min = %v", total.Min())
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New()
		for i := 0; i < 5000; i++ {
			h.Record(time.Duration(rng.Intn(1e8)))
		}
		pts := h.CDF(50)
		if len(pts) == 0 {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Fraction < pts[i-1].Fraction || pts[i].Latency < pts[i-1].Latency {
				return false
			}
		}
		return pts[len(pts)-1].Fraction > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New()
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Intn(1e9)))
	}
	last := time.Duration(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile not monotonic at q=%.2f: %v < %v", q, v, last)
		}
		last = v
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	h := New()
	h.Record(-5 * time.Second)
	if h.Min() != 0 {
		t.Errorf("min = %v", h.Min())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.At("get").Record(time.Millisecond)
	s.At("put").Record(2 * time.Millisecond)
	s.At("get").Record(3 * time.Millisecond)
	if s.At("get").Count() != 2 || s.At("put").Count() != 1 {
		t.Error("series routing broken")
	}
	tbl := s.Table()
	if len(tbl) == 0 {
		t.Error("empty table")
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i % 1e7))
	}
}
