package sgx

import (
	"bytes"
	"errors"
	"testing"
)

// TestSealingKeyStableAcrossRestarts: the same binary on the same
// platform derives the same sealing key — SGX's MRENCLAVE policy, the
// property persistence depends on.
func TestSealingKeyStableAcrossRestarts(t *testing.T) {
	p := newTestPlatform(t)
	e1 := p.CreateEnclave([]byte("binary-v1"), 10)
	k1, err := e1.SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	e1.Destroy() // "restart"
	e2 := p.CreateEnclave([]byte("binary-v1"), 10)
	k2, err := e2.SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Error("sealing key changed across enclave restarts")
	}
}

// TestSealingKeyIsolation: different binaries and different platforms get
// different keys.
func TestSealingKeyIsolation(t *testing.T) {
	p := newTestPlatform(t)
	kA, err := p.CreateEnclave([]byte("binary-a"), 10).SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	kB, err := p.CreateEnclave([]byte("binary-b"), 10).SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(kA, kB) {
		t.Error("different binaries share a sealing key")
	}
	p2 := newTestPlatform(t)
	kA2, err := p2.CreateEnclave([]byte("binary-a"), 10).SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(kA, kA2) {
		t.Error("different platforms share a sealing key")
	}
}

func TestSealingKeyAfterDestroy(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)
	e.Destroy()
	if _, err := e.SealingKey(); !errors.Is(err, ErrEnclaveStopped) {
		t.Errorf("got %v", err)
	}
}
