package sgx

import (
	"bytes"
	"errors"
	"testing"
)

func TestAttestationHandshake(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("precursor-server-v1"), 10)

	ch, err := NewClientHandshake()
	if err != nil {
		t.Fatalf("NewClientHandshake: %v", err)
	}
	sh, serverKey, err := e.RespondHandshake(ch.Hello())
	if err != nil {
		t.Fatalf("RespondHandshake: %v", err)
	}
	clientKey, err := ch.Complete(p.AttestationPublicKey(), sh, e.Measurement())
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if !bytes.Equal(clientKey, serverKey) {
		t.Error("client and enclave derived different session keys")
	}
	if len(clientKey) != 16 {
		t.Errorf("session key length %d, want 16", len(clientKey))
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("malicious-binary"), 10)
	expected := p.CreateEnclave([]byte("precursor-server-v1"), 10).Measurement()

	ch, err := NewClientHandshake()
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := e.RespondHandshake(ch.Hello())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Complete(p.AttestationPublicKey(), sh, expected); !errors.Is(err, ErrMeasurement) {
		t.Errorf("got %v, want ErrMeasurement", err)
	}
}

func TestAttestationRejectsWrongPlatform(t *testing.T) {
	p1 := newTestPlatform(t)
	p2 := newTestPlatform(t)
	e := p1.CreateEnclave([]byte("img"), 10)

	ch, err := NewClientHandshake()
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := e.RespondHandshake(ch.Hello())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Complete(p2.AttestationPublicKey(), sh, e.Measurement()); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("got %v, want ErrQuoteInvalid", err)
	}
}

// TestAttestationRejectsKeySubstitution: a man in the middle replacing the
// enclave's ECDH key must be caught, because the quote binds both keys.
func TestAttestationRejectsKeySubstitution(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 10)

	ch, err := NewClientHandshake()
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := e.RespondHandshake(ch.Hello())
	if err != nil {
		t.Fatal(err)
	}
	// Substitute the attacker's public key for the enclave's.
	mitm, err := NewClientHandshake()
	if err != nil {
		t.Fatal(err)
	}
	sh.PublicKey = mitm.Hello().PublicKey
	if _, err := ch.Complete(p.AttestationPublicKey(), sh, e.Measurement()); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("got %v, want ErrQuoteInvalid", err)
	}
}

// TestAttestationRejectsReplayedQuote: a quote for a different nonce must
// not verify for this handshake.
func TestAttestationRejectsReplayedQuote(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 10)

	old, err := NewClientHandshake()
	if err != nil {
		t.Fatal(err)
	}
	oldSh, _, err := e.RespondHandshake(old.Hello())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewClientHandshake()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Complete(p.AttestationPublicKey(), oldSh, e.Measurement()); err == nil {
		t.Error("replayed ServerHello accepted")
	}
}

func TestQuoteTamperDetected(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 10)
	q, err := e.Quote([]byte("report"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(p.AttestationPublicKey(), q, e.Measurement()); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	q.ReportData[0] ^= 1
	if err := VerifyQuote(p.AttestationPublicKey(), q, e.Measurement()); !errors.Is(err, ErrQuoteInvalid) {
		t.Errorf("tampered report data: got %v", err)
	}
}
