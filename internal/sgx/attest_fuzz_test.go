package sgx

import (
	"bytes"
	"testing"

	"precursor/internal/cryptox"
)

// Native fuzz targets for the attestation/session-setup messages — the
// first attacker-controlled bytes a Precursor endpoint ever parses.
// Mirrors internal/wire/fuzz_test.go: no input may panic, and no
// invalid input may ever yield a successful verification or a session
// key. Seeds cover the honest handshake so mutation explores the
// near-valid space; run with -fuzz for exploration.

// fuzzHandshake builds one honest platform/enclave/handshake fixture
// shared (read-only) across fuzz iterations.
func fuzzHandshake(f *testing.F) (*Platform, *Enclave, *ClientHandshake, ServerHello, []byte) {
	f.Helper()
	platform, err := NewPlatform()
	if err != nil {
		f.Fatal(err)
	}
	enclave := platform.CreateEnclave([]byte("fuzz-enclave-image"), 4)
	ch, err := NewClientHandshake()
	if err != nil {
		f.Fatal(err)
	}
	sh, key, err := enclave.RespondHandshake(ch.Hello())
	if err != nil {
		f.Fatal(err)
	}
	return platform, enclave, ch, sh, key
}

func FuzzVerifyQuote(f *testing.F) {
	platform, enclave, _, sh, _ := fuzzHandshake(f)
	pub := platform.AttestationPublicKey()
	expected := enclave.Measurement()

	f.Add(sh.Quote.Measurement[:], sh.Quote.ReportData, sh.Quote.Signature)
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add(expected[:], []byte("report"), []byte("not-asn1"))

	f.Fuzz(func(t *testing.T, meas, report, sig []byte) {
		var q Quote
		copy(q.Measurement[:], meas)
		q.ReportData = report
		q.Signature = sig
		err := VerifyQuote(pub, q, expected)
		if err == nil {
			// Acceptance must mean exactly this: the pinned measurement,
			// under a signature the platform key really validates.
			if q.Measurement != expected {
				t.Fatalf("VerifyQuote accepted measurement %x, pinned %x", q.Measurement, expected)
			}
			if VerifyQuote(pub, q, expected) != nil {
				t.Fatal("VerifyQuote not deterministic")
			}
		}
	})
}

func FuzzClientHandshakeComplete(f *testing.F) {
	platform, enclave, ch, sh, key := fuzzHandshake(f)
	pub := platform.AttestationPublicKey()
	expected := enclave.Measurement()

	f.Add(sh.PublicKey, sh.Quote.Measurement[:], sh.Quote.ReportData, sh.Quote.Signature)
	f.Add([]byte{}, []byte{}, []byte{}, []byte{})
	f.Add(sh.PublicKey, expected[:], sh.Quote.ReportData, []byte("forged"))

	f.Fuzz(func(t *testing.T, serverPub, meas, report, sig []byte) {
		var q Quote
		copy(q.Measurement[:], meas)
		q.ReportData = report
		q.Signature = sig
		got, err := ch.Complete(pub, ServerHello{PublicKey: serverPub, Quote: q}, expected)
		if err != nil {
			return
		}
		// A completed handshake is only legal for the enclave's genuine
		// ephemeral key — anything else is a successful impersonation.
		if !bytes.Equal(serverPub, sh.PublicKey) {
			t.Fatalf("Complete accepted forged server key %x", serverPub)
		}
		if len(got) != cryptox.SessionKeySize || !bytes.Equal(got, key) {
			t.Fatalf("Complete derived key %x, honest handshake derived %x", got, key)
		}
	})
}

func FuzzRespondHandshake(f *testing.F) {
	platform, enclave, ch, _, _ := fuzzHandshake(f)
	pub := platform.AttestationPublicKey()

	f.Add(ch.Hello().PublicKey, ch.Hello().Nonce)
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0x04, 0xff}, []byte("nonce"))

	f.Fuzz(func(t *testing.T, clientPub, nonce []byte) {
		sh, key, err := enclave.RespondHandshake(ClientHello{PublicKey: clientPub, Nonce: nonce})
		if err != nil {
			return
		}
		// The enclave may serve any well-formed client, but whatever it
		// returns must be a complete, verifiable transcript.
		if len(key) != cryptox.SessionKeySize {
			t.Fatalf("session key length %d", len(key))
		}
		if verr := VerifyQuote(pub, sh.Quote, enclave.Measurement()); verr != nil {
			t.Fatalf("enclave produced unverifiable quote: %v", verr)
		}
		want := reportData(sh.PublicKey, clientPub, nonce)
		if !bytes.Equal(sh.Quote.ReportData, want) {
			t.Fatal("quote does not bind the handshake transcript")
		}
	})
}
