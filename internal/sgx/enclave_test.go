package sgx

import (
	"errors"
	"sync"
	"testing"
)

func newTestPlatform(t *testing.T, opts ...PlatformOption) *Platform {
	t.Helper()
	p, err := NewPlatform(opts...)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func TestEnclaveMeasurementDeterministic(t *testing.T) {
	p := newTestPlatform(t)
	a := p.CreateEnclave([]byte("image-v1"), 10)
	b := p.CreateEnclave([]byte("image-v1"), 10)
	c := p.CreateEnclave([]byte("image-v2"), 10)
	if a.Measurement() != b.Measurement() {
		t.Error("same image produced different measurements")
	}
	if a.Measurement() == c.Measurement() {
		t.Error("different images produced the same measurement")
	}
}

func TestAllocTracksWorkingSet(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 42)

	if got := e.Stats().EPCPages; got != 42 {
		t.Fatalf("initial pages = %d, want image pages 42", got)
	}
	if _, err := e.Alloc(PageSize); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().EPCPages; got != 43 {
		t.Errorf("after 1-page alloc: %d pages, want 43", got)
	}
	if _, err := e.Alloc(10*PageSize + 1); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().EPCPages; got != 54 {
		t.Errorf("after 11-page alloc: %d pages, want 54", got)
	}
	if got := e.Stats().HeapBytes; got != int64(PageSize+10*PageSize+1) {
		t.Errorf("heap bytes = %d", got)
	}
}

func TestFreeRetiresPages(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)
	r, err := e.Alloc(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if before.EPCPages < 4 {
		t.Fatalf("pages before free = %d", before.EPCPages)
	}
	e.Free(r)
	after := e.Stats()
	if after.HeapBytes != 0 {
		t.Errorf("heap bytes after free = %d, want 0", after.HeapBytes)
	}
	// The working set reflects active pages (sgx-perf semantics): freed
	// pages leave it, so a table that grows by replacement is counted at
	// its current size only.
	if after.EPCPages != 0 {
		t.Errorf("working set after free: %d -> %d, want 0", before.EPCPages, after.EPCPages)
	}
}

func TestTransitionAccounting(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)

	for i := 0; i < 3; i++ {
		if err := e.Ecall("poll", func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Ocall("grow_pool", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Ecalls != 3 || s.Ocalls != 1 {
		t.Errorf("ecalls=%d ocalls=%d, want 3/1", s.Ecalls, s.Ocalls)
	}
	if want := uint64(4 * TransitionCycles); s.Cycles != want {
		t.Errorf("cycles=%d, want %d", s.Cycles, want)
	}
	counts := e.CallCounts()
	if counts["ecall:poll"] != 3 || counts["ocall:grow_pool"] != 1 {
		t.Errorf("call counts = %v", counts)
	}
}

func TestEcallErrorPropagates(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)
	sentinel := errors.New("inner failure")
	if err := e.Ecall("x", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("got %v, want sentinel", err)
	}
}

// TestEPCPagingCharged: once the working set exceeds the EPC, touches of
// non-resident pages incur fault charges — the mechanism behind the paging
// series in Figure 7.
func TestEPCPagingCharged(t *testing.T) {
	// Tiny EPC: 8 pages.
	p := newTestPlatform(t, WithEPCBytes(8*PageSize))
	e := p.CreateEnclave([]byte("img"), 0)

	r, err := e.Alloc(6 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if faults := e.Stats().PageFaults; faults != 0 {
		t.Fatalf("faults before exceeding EPC: %d", faults)
	}
	// Allocate beyond the EPC: allocation touches pages, forcing eviction.
	r2, err := e.Alloc(6 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	overflow := e.Stats().PageFaults
	if overflow == 0 {
		t.Fatal("no faults despite exceeding EPC")
	}
	// Re-touching the first (now evicted) region faults again.
	r.Touch(0, 6*PageSize)
	if got := e.Stats().PageFaults; got <= overflow {
		t.Errorf("re-touch did not fault: %d -> %d", overflow, got)
	}
	// Touching a resident page immediately again is free.
	before := e.Stats().PageFaults
	r2.Touch(5*PageSize, 10)
	r2.Touch(5*PageSize, 10)
	if got := e.Stats().PageFaults; got > before+1 {
		t.Errorf("hot page faulted repeatedly: %d -> %d", before, got)
	}
}

func TestNoPagingUnderEPC(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)
	r, err := e.Alloc(1 << 20) // 1 MiB, far below 93 MiB
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Touch(0, 1<<20)
	}
	if faults := e.Stats().PageFaults; faults != 0 {
		t.Errorf("faults under EPC limit: %d", faults)
	}
}

func TestDestroyedEnclaveRejectsCalls(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)
	e.Destroy()
	if err := e.Ecall("x", func() error { return nil }); !errors.Is(err, ErrEnclaveStopped) {
		t.Errorf("ecall: got %v", err)
	}
	if err := e.Ocall("x", func() error { return nil }); !errors.Is(err, ErrEnclaveStopped) {
		t.Errorf("ocall: got %v", err)
	}
	if _, err := e.Alloc(16); !errors.Is(err, ErrEnclaveStopped) {
		t.Errorf("alloc: got %v", err)
	}
	if _, err := e.Quote(nil); !errors.Is(err, ErrEnclaveStopped) {
		t.Errorf("quote: got %v", err)
	}
}

func TestEnclaveConcurrentUse(t *testing.T) {
	p := newTestPlatform(t)
	e := p.CreateEnclave([]byte("img"), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = e.Ecall("op", func() error { return nil })
				r, err := e.Alloc(64)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				r.Touch(0, 64)
				e.Free(r)
			}
		}()
	}
	wg.Wait()
	if got := e.Stats().Ecalls; got != 8*200 {
		t.Errorf("ecalls = %d, want %d", got, 8*200)
	}
}

func TestWorkingSetMiB(t *testing.T) {
	s := Stats{EPCPages: 17392}
	if got := s.WorkingSetMiB(); got < 67.8 || got > 68.0 {
		t.Errorf("17392 pages = %.2f MiB, want ≈67.9", got)
	}
}

func TestMonotonicCounter(t *testing.T) {
	c := NewMonotonicCounter()
	if v := c.Increment(); v != 1 {
		t.Errorf("first increment = %d", v)
	}
	if v := c.Increment(); v != 2 {
		t.Errorf("second increment = %d", v)
	}
	if err := c.VerifyAtLeast(2); err != nil {
		t.Errorf("current value rejected: %v", err)
	}
	if err := c.VerifyAtLeast(5); err != nil {
		t.Errorf("future value rejected: %v", err)
	}
	if err := c.VerifyAtLeast(1); !errors.Is(err, ErrCounterRollback) {
		t.Errorf("rollback not detected: %v", err)
	}
}
