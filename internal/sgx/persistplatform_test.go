package sgx

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadOrCreatePlatformRoundTrip: the persisted platform identity is
// stable across "reboots": same attestation key, same sealing keys.
func TestLoadOrCreatePlatformRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p1, err := LoadOrCreatePlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := p1.CreateEnclave([]byte("bin"), 1).SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := LoadOrCreatePlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.AttestationPublicKey().Equal(p2.AttestationPublicKey()) {
		t.Error("attestation key changed across reload")
	}
	k2, err := p2.CreateEnclave([]byte("bin"), 1).SealingKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Error("sealing key changed across reload")
	}
	// A different directory is a different machine.
	p3, err := LoadOrCreatePlatform(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if p1.AttestationPublicKey().Equal(p3.AttestationPublicKey()) {
		t.Error("fresh platform shares the attestation key")
	}
}

// TestLoadOrCreatePlatformQuotesVerify: quotes from a reloaded platform
// verify under the originally published key.
func TestLoadOrCreatePlatformQuotesVerify(t *testing.T) {
	dir := t.TempDir()
	p1, err := LoadOrCreatePlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	published := p1.AttestationPublicKey()

	p2, err := LoadOrCreatePlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := p2.CreateEnclave([]byte("bin"), 1)
	q, err := e.Quote([]byte("rd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(published, q, e.Measurement()); err != nil {
		t.Errorf("reloaded platform's quote rejected: %v", err)
	}
}

func TestLoadOrCreatePlatformCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadOrCreatePlatform(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sealing root.
	if err := writeFile(filepath.Join(dir, platformSealFile), []byte("short")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrCreatePlatform(dir); err == nil {
		t.Error("corrupt sealing root accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}
