package sgx

import (
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
)

// Platform persistence: a real machine's attestation and sealing roots
// are fused into the CPU and survive reboots. LoadOrCreatePlatform gives
// the simulated platform the same property by persisting its key material
// to a directory, so a restarted precursor-server still speaks for the
// same "machine" (its quotes verify under the published key and its
// sealed snapshots still open).

const (
	platformKeyFile  = "platform.key"
	platformSealFile = "platform.seal"
)

// LoadOrCreatePlatform restores a platform's identity from dir, creating
// a fresh one (and persisting it) on first use. Extra options are applied
// after loading.
func LoadOrCreatePlatform(dir string, opts ...PlatformOption) (*Platform, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("platform state dir: %w", err)
	}
	keyPath := filepath.Join(dir, platformKeyFile)
	sealPath := filepath.Join(dir, platformSealFile)

	keyPEM, keyErr := os.ReadFile(keyPath)
	sealRaw, sealErr := os.ReadFile(sealPath)
	if os.IsNotExist(keyErr) || os.IsNotExist(sealErr) {
		p, err := NewPlatform(opts...)
		if err != nil {
			return nil, err
		}
		if err := savePlatform(p, keyPath, sealPath); err != nil {
			return nil, err
		}
		return p, nil
	}
	if keyErr != nil {
		return nil, fmt.Errorf("read platform key: %w", keyErr)
	}
	if sealErr != nil {
		return nil, fmt.Errorf("read sealing root: %w", sealErr)
	}

	block, _ := pem.Decode(keyPEM)
	if block == nil || block.Type != "EC PRIVATE KEY" {
		return nil, fmt.Errorf("platform key file %s malformed", keyPath)
	}
	parsed, err := x509.ParseECPrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("parse platform key: %w", err)
	}
	if len(sealRaw) != 32 {
		return nil, fmt.Errorf("sealing root %s malformed (%d bytes)", sealPath, len(sealRaw))
	}
	p := &Platform{
		epcBytes:         DefaultEPCBytes,
		transitionCycles: TransitionCycles,
		faultCycles:      PageFaultCycles,
		signKey:          parsed,
		sealSecret:       sealRaw,
	}
	for _, o := range opts {
		o.apply(p)
	}
	return p, nil
}

func savePlatform(p *Platform, keyPath, sealPath string) error {
	der, err := x509.MarshalECPrivateKey(p.signKey)
	if err != nil {
		return fmt.Errorf("marshal platform key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der})
	if err := os.WriteFile(keyPath, keyPEM, 0o600); err != nil {
		return fmt.Errorf("write platform key: %w", err)
	}
	if err := os.WriteFile(sealPath, p.sealSecret, 0o600); err != nil {
		return fmt.Errorf("write sealing root: %w", err)
	}
	return nil
}
