package sgx

import (
	"errors"
	"sync"
)

// ErrCounterRollback is returned when a monotonic counter would move
// backwards — the signature of a state rollback or fork attack.
var ErrCounterRollback = errors.New("sgx: monotonic counter rollback detected")

// MonotonicCounter models the SGX trusted monotonic counter used to detect
// rollback of persisted state (§2.1). Increment-only; an attempt to set a
// lower value fails.
type MonotonicCounter struct {
	mu    sync.Mutex
	value uint64
}

// NewMonotonicCounter creates a counter starting at zero.
func NewMonotonicCounter() *MonotonicCounter { return &MonotonicCounter{} }

// Increment advances the counter and returns the new value.
func (c *MonotonicCounter) Increment() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.value++
	return c.value
}

// Value returns the current counter value.
func (c *MonotonicCounter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value
}

// AdvanceTo fast-forwards the counter to v. Moving backwards is refused
// with ErrCounterRollback; v equal to the current value is a no-op. The
// anti-entropy repair path uses this when a replica adopts a donor's
// sealed snapshot whose counter is ahead of its own.
func (c *MonotonicCounter) AdvanceTo(v uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v < c.value {
		return ErrCounterRollback
	}
	c.value = v
	return nil
}

// VerifyAtLeast checks that observed state is not older than the counter,
// i.e. observed >= current value. It returns ErrCounterRollback otherwise.
func (c *MonotonicCounter) VerifyAtLeast(observed uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if observed < c.value {
		return ErrCounterRollback
	}
	return nil
}
