package sgx

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// TrustedCounter abstracts the monotonic counter used for rollback
// detection. The in-process MonotonicCounter satisfies it; deployments
// that must survive process restarts plug in an external trusted counter
// service (the ROTE-style "lightweight collective memory" the paper cites
// for rollback and forking detection, §2.1).
type TrustedCounter interface {
	// Increment advances the counter and returns the new value.
	Increment() (uint64, error)
	// Value returns the current counter value.
	Value() (uint64, error)
}

// CounterAdvancer is the optional fast-forward capability of a
// TrustedCounter. A replica adopting a donor's sealed snapshot during
// anti-entropy repair must move its counter up to the snapshot's stamp
// (never down — implementations return ErrCounterRollback for that), so
// the usual counter==current restore check holds afterwards. Counters
// without this capability cannot take part in replica repair.
type CounterAdvancer interface {
	// AdvanceTo fast-forwards the counter to v (>= current value).
	AdvanceTo(v uint64) error
}

// MonotonicCounter implements TrustedCounter in process memory.
var _ TrustedCounter = (*counterAdapter)(nil)
var _ CounterAdvancer = (*counterAdapter)(nil)
var _ CounterAdvancer = (*FileCounter)(nil)

// counterAdapter lifts MonotonicCounter (whose methods are infallible)
// into the TrustedCounter interface.
type counterAdapter struct{ c *MonotonicCounter }

// AsTrustedCounter adapts a MonotonicCounter to the TrustedCounter
// interface.
func AsTrustedCounter(c *MonotonicCounter) TrustedCounter {
	return &counterAdapter{c: c}
}

// Increment implements TrustedCounter.
func (a *counterAdapter) Increment() (uint64, error) { return a.c.Increment(), nil }

// Value implements TrustedCounter.
func (a *counterAdapter) Value() (uint64, error) { return a.c.Value(), nil }

// AdvanceTo implements CounterAdvancer.
func (a *counterAdapter) AdvanceTo(v uint64) error { return a.c.AdvanceTo(v) }

// FileCounter is a TrustedCounter persisted to a file, standing in for an
// external trusted monotonic-counter service. Note the trust caveat: a
// file on the *same* untrusted host can itself be rolled back; in a real
// deployment this state must live with a quorum of other enclaves (ROTE)
// or in hardware counters. The implementation is what the store needs —
// strictly monotonic, durable across restarts — with trust delegated to
// wherever the file actually lives.
type FileCounter struct {
	mu   sync.Mutex
	path string
	v    uint64
}

// OpenFileCounter loads (or creates) the counter state at path.
func OpenFileCounter(path string) (*FileCounter, error) {
	fc := &FileCounter{path: path}
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh counter.
	case err != nil:
		return nil, fmt.Errorf("read counter: %w", err)
	case len(raw) == 8:
		fc.v = binary.LittleEndian.Uint64(raw)
	default:
		return nil, fmt.Errorf("counter file %s corrupt (%d bytes)", path, len(raw))
	}
	return fc, nil
}

// Increment implements TrustedCounter, persisting before returning.
func (f *FileCounter) Increment() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	next := f.v + 1
	if err := f.writeLocked(next); err != nil {
		return 0, err
	}
	f.v = next
	return next, nil
}

// Value implements TrustedCounter.
func (f *FileCounter) Value() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.v, nil
}

// AdvanceTo implements CounterAdvancer, persisting the new value before
// returning. Moving backwards is refused with ErrCounterRollback.
func (f *FileCounter) AdvanceTo(v uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v < f.v {
		return ErrCounterRollback
	}
	if v == f.v {
		return nil
	}
	if err := f.writeLocked(v); err != nil {
		return err
	}
	f.v = v
	return nil
}

func (f *FileCounter) writeLocked(v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, buf[:], 0o600); err != nil {
		return fmt.Errorf("write counter: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		return fmt.Errorf("commit counter: %w", err)
	}
	return nil
}
