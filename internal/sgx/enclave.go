package sgx

import (
	"sync"
)

// Enclave is one simulated SGX enclave: an isolated heap whose pages are
// tracked against the EPC, plus transition gates and cycle accounting.
//
// All methods are safe for concurrent use; the store's trusted threads
// enter through Ecall from multiple goroutines.
type Enclave struct {
	platform    *Platform
	measurement Measurement
	imagePages  int

	mu        sync.Mutex
	destroyed bool
	nextBase  int64
	heapBytes int64

	// pages is every live heap page touched: the enclave working set that
	// sgx-perf reports and Table 1 counts (plus imagePages). Freeing a
	// region retires its pages — sgx-perf traces pages in active use, not
	// lifetime-cumulative allocations.
	pages map[int64]struct{}

	// resident tracks which pages currently fit in the EPC; once the
	// working set exceeds maxResident, touches of non-resident pages are
	// charged as EPC faults.
	resident     map[int64]struct{}
	residentFIFO []int64
	maxResident  int64

	ecalls     uint64
	ocalls     uint64
	pageFaults uint64
	cycles     uint64

	callCounts map[string]uint64
}

// Region is a block of enclave memory returned by Alloc. Data is ordinary
// process memory, but because the only reference lives inside enclave-owned
// structures reached through ecalls, package boundaries enforce the
// isolation the hardware would.
type Region struct {
	Data []byte

	enclave *Enclave
	base    int64
}

// Measurement returns the enclave's MRENCLAVE-equivalent identity.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Alloc allocates n bytes on the enclave heap and records the pages in the
// working set. It returns ErrEPCExhausted only if the platform was
// configured with a hard heap cap smaller than the request; by default the
// heap may exceed the EPC — exactly like real SGX — at the price of paging
// charges on access.
func (e *Enclave) Alloc(n int) (*Region, error) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return nil, ErrEnclaveStopped
	}
	base := e.nextBase
	// Keep allocations page-aligned so working-set accounting is exact.
	span := int64(n)
	if rem := span % PageSize; rem != 0 {
		span += PageSize - rem
	}
	if span == 0 {
		span = PageSize
	}
	e.nextBase += span
	e.heapBytes += int64(n)
	r := &Region{Data: make([]byte, n), enclave: e, base: base}
	e.touchLocked(base, int64(n))
	return r, nil
}

// Free returns a region's pages to the allocator's accounting, retiring
// them from both the working set and residency: the enclave's working set
// reflects pages in active use, as sgx-perf measures it (so e.g. a grown
// hash table's footprint is its current size, not the sum of all
// generations).
func (e *Enclave) Free(r *Region) {
	if r == nil || r.enclave != e {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.heapBytes -= int64(len(r.Data))
	if e.heapBytes < 0 {
		e.heapBytes = 0
	}
	for p := r.base / PageSize; p <= (r.base+int64(len(r.Data)))/PageSize; p++ {
		delete(e.resident, p)
		delete(e.pages, p)
	}
	r.Data = nil
}

// Touch records an access to r.Data[off:off+n] for paging purposes. The
// store calls this on every in-enclave read or write so that exceeding the
// EPC produces the fault charges Figure 7's paging experiment shows.
func (r *Region) Touch(off, n int) {
	if r == nil || n <= 0 {
		return
	}
	r.enclave.mu.Lock()
	r.enclave.touchLocked(r.base+int64(off), int64(n))
	r.enclave.mu.Unlock()
}

func (e *Enclave) touchLocked(base, n int64) {
	if n <= 0 {
		n = 1
	}
	first := base / PageSize
	last := (base + n - 1) / PageSize
	for p := first; p <= last; p++ {
		e.pages[p] = struct{}{}
		if _, ok := e.resident[p]; ok {
			continue
		}
		// Page not resident: count a fault only once the EPC is full,
		// i.e. when residency requires evicting another page.
		if int64(len(e.resident)) >= e.maxResident-int64(e.imagePages) {
			// Evict the oldest resident page (FIFO approximation of the
			// kernel's paging) and charge the round trip.
			for len(e.residentFIFO) > 0 {
				victim := e.residentFIFO[0]
				e.residentFIFO = e.residentFIFO[1:]
				if _, still := e.resident[victim]; still {
					delete(e.resident, victim)
					break
				}
			}
			e.pageFaults++
			e.cycles += e.platform.faultCycles
		}
		e.resident[p] = struct{}{}
		e.residentFIFO = append(e.residentFIFO, p)
	}
}

// Ecall enters the enclave, charging one transition, and runs fn. The name
// is recorded for sgx-perf-style per-call statistics.
func (e *Enclave) Ecall(name string, fn func() error) error {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return ErrEnclaveStopped
	}
	e.ecalls++
	e.cycles += e.platform.transitionCycles
	e.countLocked("ecall:" + name)
	e.mu.Unlock()
	return fn()
}

// Ocall leaves the enclave, charging one transition, and runs fn in the
// untrusted environment.
func (e *Enclave) Ocall(name string, fn func() error) error {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return ErrEnclaveStopped
	}
	e.ocalls++
	e.cycles += e.platform.transitionCycles
	e.countLocked("ocall:" + name)
	e.mu.Unlock()
	return fn()
}

func (e *Enclave) countLocked(name string) {
	if e.callCounts == nil {
		e.callCounts = make(map[string]uint64)
	}
	e.callCounts[name]++
}

// ChargeCycles adds modelled in-enclave work (e.g. crypto) to the cycle
// counter without a transition.
func (e *Enclave) ChargeCycles(c uint64) {
	e.mu.Lock()
	e.cycles += c
	e.mu.Unlock()
}

// Stats returns a snapshot of accounted activity.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Ecalls:     e.ecalls,
		Ocalls:     e.ocalls,
		PageFaults: e.pageFaults,
		Cycles:     e.cycles,
		HeapBytes:  e.heapBytes,
		EPCPages:   e.imagePages + len(e.pages),
	}
}

// CallCounts returns a copy of the per-call transition counters.
func (e *Enclave) CallCounts() map[string]uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]uint64, len(e.callCounts))
	for k, v := range e.callCounts {
		out[k] = v
	}
	return out
}

// Destroy tears the enclave down; further calls fail with
// ErrEnclaveStopped. The hosting OS can do this at any time (the paper's
// availability assumption), so the store must tolerate it.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	e.destroyed = true
	e.mu.Unlock()
}
