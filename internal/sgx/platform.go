package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by platform and enclave operations.
var (
	ErrEPCExhausted   = errors.New("sgx: enclave heap exceeds configured maximum")
	ErrQuoteInvalid   = errors.New("sgx: quote signature invalid")
	ErrMeasurement    = errors.New("sgx: unexpected enclave measurement")
	ErrEnclaveStopped = errors.New("sgx: enclave destroyed")
)

// Platform models one SGX-capable machine: it owns the attestation signing
// key (standing in for the Intel quoting infrastructure) and the EPC
// configuration shared by all enclaves it hosts.
type Platform struct {
	epcBytes         int64
	transitionCycles uint64
	faultCycles      uint64

	signKey *ecdsa.PrivateKey
	// sealSecret stands in for the CPU's fused sealing root: sealing keys
	// are derived from it per enclave measurement, so an enclave restarted
	// from the same binary on the same platform recovers the same key —
	// SGX's MRENCLAVE sealing policy.
	sealSecret []byte

	mu       sync.Mutex
	enclaves []*Enclave
}

// PlatformOption configures a Platform.
type PlatformOption interface {
	apply(*Platform)
}

type epcOption int64

func (o epcOption) apply(p *Platform) { p.epcBytes = int64(o) }

// WithEPCBytes overrides the usable EPC size (default 93 MiB). The
// evaluation's Ice-Lake comparison uses 188 MiB.
func WithEPCBytes(n int64) PlatformOption { return epcOption(n) }

type transitionOption uint64

func (o transitionOption) apply(p *Platform) { p.transitionCycles = uint64(o) }

// WithTransitionCycles overrides the modelled ecall/ocall cost.
func WithTransitionCycles(c uint64) PlatformOption { return transitionOption(c) }

type faultOption uint64

func (o faultOption) apply(p *Platform) { p.faultCycles = uint64(o) }

// WithPageFaultCycles overrides the modelled EPC paging cost.
func WithPageFaultCycles(c uint64) PlatformOption { return faultOption(c) }

// NewPlatform creates an SGX platform with a fresh attestation key.
func NewPlatform(opts ...PlatformOption) (*Platform, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attestation key: %w", err)
	}
	sealSecret := make([]byte, 32)
	if _, err := rand.Read(sealSecret); err != nil {
		return nil, fmt.Errorf("sealing root: %w", err)
	}
	p := &Platform{
		epcBytes:         DefaultEPCBytes,
		transitionCycles: TransitionCycles,
		faultCycles:      PageFaultCycles,
		signKey:          key,
		sealSecret:       sealSecret,
	}
	for _, o := range opts {
		o.apply(p)
	}
	return p, nil
}

// AttestationPublicKey returns the platform's quote-verification key. In a
// real deployment clients would obtain this through the Intel attestation
// service; here it is distributed out of band.
func (p *Platform) AttestationPublicKey() *ecdsa.PublicKey {
	return &p.signKey.PublicKey
}

// EPCBytes returns the usable EPC size for enclaves on this platform.
func (p *Platform) EPCBytes() int64 { return p.epcBytes }

// CreateEnclave loads an enclave whose identity is the given image bytes.
// The measurement is the SHA-256 of the image, mirroring MRENCLAVE. The
// imagePages parameter is the number of EPC pages the loaded code and
// static data occupy before any heap allocation (ShieldStore's statically
// allocated structures make this large; Precursor keeps it tiny).
func (p *Platform) CreateEnclave(image []byte, imagePages int) *Enclave {
	e := &Enclave{
		platform:    p,
		measurement: Measurement(sha256.Sum256(image)),
		imagePages:  imagePages,
		pages:       make(map[int64]struct{}),
		resident:    make(map[int64]struct{}),
		maxResident: p.epcBytes / PageSize,
	}
	p.mu.Lock()
	p.enclaves = append(p.enclaves, e)
	p.mu.Unlock()
	return e
}

// signQuote signs measurement‖reportData with the platform key.
func (p *Platform) signQuote(m Measurement, reportData []byte) ([]byte, error) {
	digest := quoteDigest(m, reportData)
	sig, err := ecdsa.SignASN1(rand.Reader, p.signKey, digest)
	if err != nil {
		return nil, fmt.Errorf("sign quote: %w", err)
	}
	return sig, nil
}

func quoteDigest(m Measurement, reportData []byte) []byte {
	h := sha256.New()
	h.Write([]byte("precursor-sgx-quote-v1"))
	h.Write(m[:])
	h.Write(reportData)
	return h.Sum(nil)
}
