// Package sgx simulates the Intel SGX trusted-execution environment that
// Precursor's server runs in.
//
// Real SGX hardware is unavailable in this reproduction, so the package
// models the properties the paper's design and evaluation depend on:
//
//   - an isolated enclave memory region whose size is bounded by the
//     enclave page cache (EPC, ≈93 MiB usable on the paper's hardware);
//   - costly transitions between the untrusted application and the enclave
//     (ecalls/ocalls, ≈13,000 cycles each per Weichbrodt et al.);
//   - software paging when the enclave working set exceeds the EPC
//     (≈20,000 cycles per evicted/reloaded page per Arnautov et al.);
//   - enclave measurement and remote attestation, producing a quote a
//     client can verify before provisioning the session key K_session;
//   - monotonic counters for rollback detection.
//
// Costs are accounted in virtual CPU cycles on per-enclave counters; the
// benchmark harness converts them to time with the calibrated clock in
// internal/sim. The functional key-value store uses the same package, so
// working-set numbers (Table 1) come from real allocation behaviour rather
// than a model.
package sgx

// Hardware constants of the paper's testbed. They are defaults; both the
// EPC size and the cost constants can be overridden per Platform for
// sensitivity experiments.
const (
	// PageSize is the EPC page granularity.
	PageSize = 4096

	// DefaultEPCBytes is the usable EPC on the paper's pre-Ice-Lake server
	// (≈93 MiB of the 128 MiB EPC after security metadata).
	DefaultEPCBytes = 93 << 20

	// TransitionCycles is the cost of one enclave transition
	// (ecall or ocall): ≈13,000 cycles for context switch, security checks
	// and TLB flush (sgx-perf, Middleware '18).
	TransitionCycles = 13000

	// PageFaultCycles is the cost of one EPC page eviction/reload
	// (≈20,000 cycles, SCONE OSDI '16).
	PageFaultCycles = 20000
)

// MeasurementSize is the size of an enclave measurement (MRENCLAVE).
const MeasurementSize = 32

// Measurement identifies the initial code and data of an enclave, the
// value remote attestation certifies.
type Measurement [MeasurementSize]byte

// Stats is a snapshot of an enclave's accounted activity.
type Stats struct {
	Ecalls     uint64 // enclave entries
	Ocalls     uint64 // calls out of the enclave
	PageFaults uint64 // EPC evictions + reloads
	Cycles     uint64 // total modelled cycles from the above
	HeapBytes  int64  // bytes currently allocated on the enclave heap
	EPCPages   int    // pages in the current working set (incl. image)
}

// WorkingSetMiB returns the working set in MiB, the unit Table 1 reports.
func (s Stats) WorkingSetMiB() float64 {
	return float64(s.EPCPages) * PageSize / (1 << 20)
}
