package sgx

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"fmt"

	"precursor/internal/cryptox"
)

// Quote is the attestation evidence an enclave produces: the measurement
// of its initial state plus caller-chosen report data, signed by the
// platform's quoting key.
type Quote struct {
	Measurement Measurement
	ReportData  []byte
	Signature   []byte
}

// VerifyQuote checks a quote's signature under the platform attestation
// key and that it certifies the expected measurement.
func VerifyQuote(pub *ecdsa.PublicKey, q Quote, expected Measurement) error {
	if !ecdsa.VerifyASN1(pub, quoteDigest(q.Measurement, q.ReportData), q.Signature) {
		return ErrQuoteInvalid
	}
	if q.Measurement != expected {
		return ErrMeasurement
	}
	return nil
}

// SealingKey derives this enclave's 16-byte sealing key (EGETKEY with the
// MRENCLAVE policy): stable across enclave restarts on the same platform
// for the same binary, unavailable to other enclaves or platforms. Used
// to persist state to untrusted storage (§2.1).
func (e *Enclave) SealingKey() ([]byte, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, ErrEnclaveStopped
	}
	e.mu.Unlock()
	return cryptox.HKDF(e.platform.sealSecret, e.measurement[:],
		[]byte("sgx-sealing-key-mrenclave-v1"), cryptox.SessionKeySize)
}

// Quote produces attestation evidence binding reportData to this enclave.
func (e *Enclave) Quote(reportData []byte) (Quote, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return Quote{}, ErrEnclaveStopped
	}
	e.mu.Unlock()
	sig, err := e.platform.signQuote(e.measurement, reportData)
	if err != nil {
		return Quote{}, err
	}
	rd := append([]byte(nil), reportData...)
	return Quote{Measurement: e.measurement, ReportData: rd, Signature: sig}, nil
}

// sessionInfo is the HKDF info string for K_session derivation.
const sessionInfo = "precursor-k-session-v1"

// ClientHello opens the attestation handshake: an ephemeral ECDH public
// key plus a freshness nonce.
type ClientHello struct {
	PublicKey []byte // ECDH P-256 public key
	Nonce     []byte // 16-byte anti-replay nonce
}

// ServerHello answers with the enclave's ephemeral key and a quote whose
// report data binds both public keys and the client nonce, proving the key
// exchange terminates inside the attested enclave.
type ServerHello struct {
	PublicKey []byte
	Quote     Quote
}

// ClientHandshake is the client half of the attested key exchange.
type ClientHandshake struct {
	priv  *ecdh.PrivateKey
	hello ClientHello
}

// NewClientHandshake generates the client's ephemeral key and nonce.
func NewClientHandshake() (*ClientHandshake, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("client ecdh key: %w", err)
	}
	nonce, err := cryptox.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	return &ClientHandshake{
		priv:  priv,
		hello: ClientHello{PublicKey: priv.PublicKey().Bytes(), Nonce: nonce},
	}, nil
}

// Hello returns the message to send to the server.
func (h *ClientHandshake) Hello() ClientHello { return h.hello }

// Complete verifies the server's quote against the expected measurement
// and platform key and derives the session key K_session.
func (h *ClientHandshake) Complete(pub *ecdsa.PublicKey, sh ServerHello, expected Measurement) ([]byte, error) {
	if err := VerifyQuote(pub, sh.Quote, expected); err != nil {
		return nil, err
	}
	want := reportData(sh.PublicKey, h.hello.PublicKey, h.hello.Nonce)
	if len(sh.Quote.ReportData) != len(want) || !equalBytes(sh.Quote.ReportData, want) {
		return nil, ErrQuoteInvalid
	}
	peer, err := ecdh.P256().NewPublicKey(sh.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("server public key: %w", err)
	}
	shared, err := h.priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	return cryptox.HKDF(shared, h.hello.Nonce, []byte(sessionInfo), cryptox.SessionKeySize)
}

// RespondHandshake is the enclave half: it generates an ephemeral key,
// quotes the transcript, and derives the same session key. It must be
// called from inside an ecall.
func (e *Enclave) RespondHandshake(ch ClientHello) (ServerHello, []byte, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return ServerHello{}, nil, fmt.Errorf("server ecdh key: %w", err)
	}
	peer, err := ecdh.P256().NewPublicKey(ch.PublicKey)
	if err != nil {
		return ServerHello{}, nil, fmt.Errorf("client public key: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return ServerHello{}, nil, fmt.Errorf("ecdh: %w", err)
	}
	serverPub := priv.PublicKey().Bytes()
	quote, err := e.Quote(reportData(serverPub, ch.PublicKey, ch.Nonce))
	if err != nil {
		return ServerHello{}, nil, err
	}
	key, err := cryptox.HKDF(shared, ch.Nonce, []byte(sessionInfo), cryptox.SessionKeySize)
	if err != nil {
		return ServerHello{}, nil, err
	}
	return ServerHello{PublicKey: serverPub, Quote: quote}, key, nil
}

func reportData(serverPub, clientPub, nonce []byte) []byte {
	h := sha256.New()
	h.Write(serverPub)
	h.Write(clientPub)
	h.Write(nonce)
	return h.Sum(nil)
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
