package perf

import (
	"strings"
	"testing"

	"precursor/internal/sgx"
)

func TestTracerSnapshots(t *testing.T) {
	p, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	e := p.CreateEnclave([]byte("img"), 10)
	tr := NewTracer(e)

	s0 := tr.Snapshot("0 keys/init")
	if s0.Stats.EPCPages != 10 {
		t.Errorf("initial pages = %d", s0.Stats.EPCPages)
	}
	if _, err := e.Alloc(8 * sgx.PageSize); err != nil {
		t.Fatal(err)
	}
	s1 := tr.Snapshot("after alloc")
	if s1.Stats.EPCPages != 18 {
		t.Errorf("pages after alloc = %d", s1.Stats.EPCPages)
	}
	if len(tr.Snapshots()) != 2 {
		t.Errorf("snapshot count = %d", len(tr.Snapshots()))
	}
	tbl := tr.Table()
	if !strings.Contains(tbl, "0 keys/init") || !strings.Contains(tbl, "18 pages") {
		t.Errorf("table = %q", tbl)
	}
}

func TestRowFormat(t *testing.T) {
	s := Snapshot{Label: "x", Stats: sgx.Stats{EPCPages: 17392}}
	row := s.Row()
	if !strings.Contains(row, "17392 pages") || !strings.Contains(row, "67.9 MiB") {
		t.Errorf("row = %q", row)
	}
}

func TestCallReport(t *testing.T) {
	p, err := sgx.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	e := p.CreateEnclave([]byte("img"), 0)
	for i := 0; i < 5; i++ {
		_ = e.Ecall("poll", func() error { return nil })
	}
	_ = e.Ocall("grow", func() error { return nil })
	rep := CallReport(e)
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) != 2 {
		t.Fatalf("report = %q", rep)
	}
	if !strings.HasPrefix(lines[0], "ecall:poll") {
		t.Errorf("sorting wrong: %q", rep)
	}
}
