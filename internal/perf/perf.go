// Package perf is the reproduction's stand-in for sgx-perf (Weichbrodt et
// al., Middleware '18), the tool the paper uses to trace enclave working
// sets for Table 1 (§5.4) and per-call transition statistics.
package perf

import (
	"fmt"
	"sort"
	"strings"

	"precursor/internal/sgx"
)

// Snapshot is one working-set observation.
type Snapshot struct {
	Label string
	Stats sgx.Stats
}

// Tracer records working-set snapshots of one enclave across experiment
// phases (e.g. after 0, 1 and 100,000 inserts).
type Tracer struct {
	enclave   *sgx.Enclave
	snapshots []Snapshot
}

// NewTracer attaches to an enclave.
func NewTracer(e *sgx.Enclave) *Tracer { return &Tracer{enclave: e} }

// Snapshot records the current working set under the given label.
func (t *Tracer) Snapshot(label string) Snapshot {
	s := Snapshot{Label: label, Stats: t.enclave.Stats()}
	t.snapshots = append(t.snapshots, s)
	return s
}

// Snapshots returns all recorded observations in order.
func (t *Tracer) Snapshots() []Snapshot {
	return append([]Snapshot(nil), t.snapshots...)
}

// Row formats one snapshot as a Table 1 cell: "N pages (X MiB)".
func (s Snapshot) Row() string {
	return fmt.Sprintf("%d pages (%.1f MiB)", s.Stats.EPCPages, s.Stats.WorkingSetMiB())
}

// Table renders all snapshots as aligned rows.
func (t *Tracer) Table() string {
	var b strings.Builder
	for _, s := range t.snapshots {
		fmt.Fprintf(&b, "%-16s %s\n", s.Label, s.Row())
	}
	return b.String()
}

// CallReport formats an enclave's per-call transition counters the way
// sgx-perf reports ecalls/ocalls, sorted by count descending.
func CallReport(e *sgx.Enclave) string {
	counts := e.CallCounts()
	type kv struct {
		name  string
		count uint64
	}
	rows := make([]kv, 0, len(counts))
	for name, c := range counts {
		rows = append(rows, kv{name, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %d\n", r.name, r.count)
	}
	return b.String()
}
