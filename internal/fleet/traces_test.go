package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"precursor/internal/obs"
)

// traceServer serves a fixed raw trace dump at /debug/traces.
func traceServer(t *testing.T, sets []RawSet) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/traces" || r.URL.Query().Get("raw") == "" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(sets); err != nil {
			t.Errorf("encode: %v", err)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTraceURL(t *testing.T) {
	got := TraceURL("http://127.0.0.1:9090/metrics")
	want := "http://127.0.0.1:9090/debug/traces?raw=1"
	if got != want {
		t.Fatalf("TraceURL = %q, want %q", got, want)
	}
	if got := TraceURL("://bad"); got != "://bad" {
		t.Fatalf("unparseable URL mangled: %q", got)
	}
}

func TestCollectAndStitch(t *testing.T) {
	const traceID = 0xabcdef0123456789
	// Client process: timebase 1_000_000, op [100, 500] relative.
	cli := traceServer(t, []RawSet{{
		Side: "client", TimeBaseUnixNano: 1_000_000,
		Traces: []obs.Trace{{
			ID: traceID, Span: 11, Parent: 0, Kind: "get", Oid: 7,
			Start: 100, End: 500,
			Spans: []obs.Span{{Stage: obs.CliTotal, Start: 100, Dur: 400}},
		}},
	}})
	// Server process: timebase 900_000, child op [100_200, 100_300]
	// relative — absolutely inside the client op.
	srvr := traceServer(t, []RawSet{{
		Side: "server", TimeBaseUnixNano: 900_000,
		Traces: []obs.Trace{
			{
				ID: traceID, Span: 22, Parent: 11, Kind: "get", Oid: 7,
				Start: 100_200, End: 100_300, Err: "shed",
				Spans: []obs.Span{{Stage: obs.SrvTotal, Start: 100_200, Dur: 100}},
			},
			// A second, unrelated server-local trace.
			{ID: 42, Span: 33, Kind: "put", Start: 1, End: 2},
		},
	}})

	nodes, err := CollectTraces(nil, []Target{
		{Name: "cli", URL: cli.URL + "/metrics"},
		{Name: "srv", URL: srvr.URL + "/metrics"},
	})
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(nodes))
	}

	stitched := Stitch(nodes)
	if len(stitched) != 2 {
		t.Fatalf("got %d stitched traces, want 2", len(stitched))
	}
	// Worst-first: the errored cross-node trace must rank ahead of the
	// clean local one.
	st := stitched[0]
	if st.ID != traceID || st.Err != "shed" {
		t.Fatalf("worst trace = id %x err %q, want %x / shed", st.ID, st.Err, uint64(traceID))
	}
	if len(st.Spans) != 2 || st.Procs != 2 {
		t.Fatalf("spans=%d procs=%d, want 2/2", len(st.Spans), st.Procs)
	}
	// Causal order and depth: client root first, server child below it.
	if st.Spans[0].Target != "cli" || st.Spans[0].Depth != 0 {
		t.Fatalf("root span = %+v", st.Spans[0])
	}
	if st.Spans[1].Target != "srv" || st.Spans[1].Depth != 1 {
		t.Fatalf("child span = %+v", st.Spans[1])
	}
	// Re-anchoring: client op starts at 1_000_000+100, server child at
	// 900_000+100_200 = 1_000_200 — inside [1_000_100, 1_000_500].
	if st.Start != 1_000_100 || st.End != 1_000_500 {
		t.Fatalf("bounds [%d, %d], want [1000100, 1000500]", st.Start, st.End)
	}
	if got := st.Spans[1].Trace.Start; got != 1_000_200 {
		t.Fatalf("child anchored start = %d, want 1000200", got)
	}
	if got := st.Spans[1].Trace.Spans[0].Start; got != 1_000_200 {
		t.Fatalf("child stage span anchored start = %d, want 1000200", got)
	}

	// Pretty print names both processes and the error.
	text := FormatStitched(stitched, 1)
	for _, want := range []string{"abcdef0123456789", "cli/client", "srv/server", `err="shed"`, "procs=2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("FormatStitched missing %q:\n%s", want, text)
		}
	}

	// Chrome export: valid JSON with one process row per target/side.
	var b strings.Builder
	if err := WriteStitchedChrome(&b, stitched); err != nil {
		t.Fatalf("WriteStitchedChrome: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	rows := map[string]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Name == "process_name" && ev.Ph == "M" {
			rows[ev.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"precursor-cli/client", "precursor-srv/server"} {
		if !rows[want] {
			t.Fatalf("missing process row %q in %v", want, rows)
		}
	}
}

func TestCollectTracesPartialFailure(t *testing.T) {
	good := traceServer(t, []RawSet{{Side: "server"}})
	nodes, err := CollectTraces(nil, []Target{
		{Name: "good", URL: good.URL + "/metrics"},
		{Name: "dead", URL: "http://127.0.0.1:1/metrics"},
	})
	if err == nil {
		t.Fatal("want an error naming the dead target")
	}
	if !strings.Contains(err.Error(), "dead") {
		t.Fatalf("error %q does not name the dead target", err)
	}
	if len(nodes) != 1 || nodes[0].Target != "good" {
		t.Fatalf("live node not returned: %+v", nodes)
	}
}
