package fleet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed metric line: a name, its label set (possibly
// empty) and the value. Summary-family suffixes (_sum, _count) keep
// their suffixed name.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels are the sample's label pairs (nil when unlabeled).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// ParseProm reads the Prometheus text exposition format (the subset
// ServeMetrics emits: HELP/TYPE comments, optional labels with quoted
// escaped values, one float per line) and returns the samples in input
// order. Comment and blank lines are skipped; a malformed sample line is
// an error — the scraper must not silently mis-aggregate.
func ParseProm(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return out, nil
}

// parseSampleLine parses one non-comment sample line.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	// Name runs to the first '{' or whitespace.
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (rare, optional in the format) would be a
	// second field; take the first.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a leading {k="v",...} block, returning the labels
// and the remainder of the line. Quoted values use the format's escapes
// (\\, \", \n).
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		// Skip separators.
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed labels %q", in)
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(in[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(in[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
	}
}
