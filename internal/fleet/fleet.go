// Package fleet is Precursor's cluster-level SLO aggregator: the view
// that turns per-process /metrics islands into one fleet health rollup.
//
// An Aggregator scrapes every configured shard/replica metrics endpoint
// (the Prometheus text format ServeMetrics emits — parsed here with a
// stdlib-only reader, no client_golang dependency), tracks per-target
// availability over a sliding window of scrape outcomes, and folds the
// targets' counters into cluster SLO rollups: availability vs. objective,
// error-budget burn, quorum-shortfall / failover / repair totals,
// security-event totals from the audit log, and the worst p99 per
// pipeline stage anywhere in the fleet. The rollup is served as one
// /fleet promtext endpoint (ServeHTTP / WriteProm) and rendered as a
// live terminal table by `precursor-cluster -top` (WriteTop).
package fleet

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"precursor/internal/heat"
)

// Defaults for Config zero values.
const (
	// DefaultSLO is the availability objective when Config.SLO is 0:
	// three nines, the ROADMAP's production-scale starting point.
	DefaultSLO = 0.999
	// DefaultWindow is the per-target scrape-outcome window used for
	// availability when Config.Window is 0.
	DefaultWindow = 64
	// DefaultInterval is Start's scrape cadence when Config.Interval
	// is 0.
	DefaultInterval = 2 * time.Second
	// DefaultScrapeTimeout bounds one target scrape when Config.Client
	// is nil.
	DefaultScrapeTimeout = 3 * time.Second
)

// Target names one metrics endpoint to scrape.
type Target struct {
	// Name labels the target in rollups ("g0/r1", "shard2", …).
	Name string
	// URL is the full metrics URL (e.g. "http://127.0.0.1:9090/metrics").
	URL string
}

// Config parameterizes New.
type Config struct {
	// Targets are the endpoints to scrape; required, at least one.
	Targets []Target
	// SLO is the fleet availability objective in [0,1) used for
	// error-budget burn (DefaultSLO if 0).
	SLO float64
	// Window is how many recent scrape outcomes feed each target's
	// availability (DefaultWindow if 0).
	Window int
	// Interval is the background scrape cadence for Start
	// (DefaultInterval if 0).
	Interval time.Duration
	// Client performs the scrapes (a DefaultScrapeTimeout-bounded
	// client if nil).
	Client *http.Client
}

// targetState is one target's scrape bookkeeping.
type targetState struct {
	name, url string
	up        bool
	err       string
	samples   []Sample
	window    []bool // ring of recent scrape outcomes
	widx      int
	wfill     int
	scrapes   uint64
	failures  uint64
}

// availability is the fraction of windowed scrapes that succeeded
// (1 when nothing has been scraped yet — an unobserved target is not a
// burning one).
func (t *targetState) availability() float64 {
	if t.wfill == 0 {
		return 1
	}
	up := 0
	for i := 0; i < t.wfill; i++ {
		if t.window[i] {
			up++
		}
	}
	return float64(up) / float64(t.wfill)
}

// record folds one scrape outcome into the window.
func (t *targetState) record(ok bool) {
	t.scrapes++
	if !ok {
		t.failures++
	}
	t.window[t.widx] = ok
	t.widx = (t.widx + 1) % len(t.window)
	if t.wfill < len(t.window) {
		t.wfill++
	}
}

// Aggregator scrapes the configured targets and serves fleet rollups.
// Safe for concurrent use.
type Aggregator struct {
	cfg    Config
	client *http.Client

	mu      sync.Mutex
	targets []*targetState

	stopCh    chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New builds an Aggregator over cfg. It performs no I/O until
// ScrapeOnce or Start.
func New(cfg Config) (*Aggregator, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("fleet: at least one target is required")
	}
	if cfg.SLO == 0 {
		cfg.SLO = DefaultSLO
	}
	if cfg.SLO < 0 || cfg.SLO >= 1 {
		return nil, fmt.Errorf("fleet: SLO %g outside [0,1)", cfg.SLO)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultScrapeTimeout}
	}
	a := &Aggregator{cfg: cfg, client: client, stopCh: make(chan struct{})}
	for _, t := range cfg.Targets {
		a.targets = append(a.targets, &targetState{
			name: t.Name, url: t.URL, window: make([]bool, cfg.Window),
		})
	}
	return a, nil
}

// ScrapeOnce scrapes every target once, concurrently, and folds the
// results in. It blocks until all scrapes complete or time out.
func (a *Aggregator) ScrapeOnce() {
	type result struct {
		samples []Sample
		err     error
	}
	results := make([]result, len(a.targets))
	var wg sync.WaitGroup
	for i, t := range a.targets {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			samples, err := a.scrape(url)
			results[i] = result{samples: samples, err: err}
		}(i, t.url)
	}
	wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, t := range a.targets {
		r := results[i]
		if r.err != nil {
			t.record(false)
			t.up = false
			t.err = r.err.Error()
			continue
		}
		t.record(true)
		t.up = true
		t.err = ""
		t.samples = r.samples
	}
}

// scrape fetches and parses one target's metrics.
func (a *Aggregator) scrape(url string) ([]Sample, error) {
	resp, err := a.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: HTTP %d", url, resp.StatusCode)
	}
	return ParseProm(resp.Body)
}

// Start launches the background scrape loop at the configured interval
// (an immediate first scrape, then ticks). Close stops it.
func (a *Aggregator) Start() {
	a.startOnce.Do(func() {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.ScrapeOnce()
			t := time.NewTicker(a.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-a.stopCh:
					return
				case <-t.C:
					a.ScrapeOnce()
				}
			}
		}()
	})
}

// Close stops the background scrape loop. Safe to call more than once,
// and without Start.
func (a *Aggregator) Close() {
	a.closeOnce.Do(func() { close(a.stopCh) })
	a.wg.Wait()
}

// TargetStatus is one target's health in a Rollup.
type TargetStatus struct {
	// Name and URL identify the target.
	Name, URL string
	// Up reports the most recent scrape's outcome.
	Up bool
	// Err is the most recent scrape error ("" when up).
	Err string
	// Availability is the windowed scrape success fraction.
	Availability float64
	// Scrapes and Failures count lifetime scrape attempts and failures.
	Scrapes, Failures uint64
}

// StageLatency is the worst p99 observed anywhere in the fleet for one
// pipeline stage.
type StageLatency struct {
	// Side is "client" or "server"; Stage is the obs stage name.
	Side, Stage string
	// P99 is the stage's worst 99th-percentile latency in seconds.
	P99 float64
	// Target names the endpoint reporting it.
	Target string
}

// TargetHeat is one target's workload-heat summary in a Rollup, folded
// from the target's precursor_heat_* families (absent for targets that
// export no heat collector).
type TargetHeat struct {
	// Name is the target's configured name.
	Name string
	// Ops sums precursor_heat_ops_total over kinds and sides.
	Ops uint64
	// Rate sums precursor_heat_op_rate over kinds and sides (ops/sec).
	Rate float64
	// RangeSkew is the target's worst key-range imbalance across its
	// heat vantages (hot keys *within* the shard's arc of the ring).
	RangeSkew heat.Skew
}

// heatSkewMinOps gates the load-skew anomaly: with fewer total fleet
// ops than this, imbalance is noise, not signal.
const heatSkewMinOps = 1000

// heatSkewAnomalyMaxMean is the hottest-shard max/mean ratio at or
// above which the rollup raises a load-skew anomaly.
const heatSkewAnomalyMaxMean = 2.0

// Rollup is one consistent snapshot of fleet health.
type Rollup struct {
	// Targets are the per-endpoint statuses, in configuration order.
	Targets []TargetStatus
	// TargetsUp counts targets whose last scrape succeeded.
	TargetsUp int
	// Availability is the mean windowed availability across targets.
	Availability float64
	// SLO echoes the configured objective.
	SLO float64
	// ErrorBudgetBurn is (1-Availability)/(1-SLO): burn 1.0 consumes
	// the budget exactly as fast as the objective allows; above 1.0 the
	// fleet is out of budget.
	ErrorBudgetBurn float64
	// QuorumShortfalls, ReadFailovers, Repairs and RepairFailures sum
	// the cluster replication counters across all targets.
	QuorumShortfalls, ReadFailovers, Repairs, RepairFailures uint64
	// AuthFailures and Replays sum the server-side integrity counters
	// across all targets.
	AuthFailures, Replays uint64
	// AuditEvents sums precursor_audit_events_total by kind across all
	// targets (empty when no target exports an audit log).
	AuditEvents map[string]uint64
	// StageP99 is the worst p99 per (side, stage) across the fleet,
	// sorted by side then stage.
	StageP99 []StageLatency
	// Heat holds per-target workload-heat summaries, in configuration
	// order, for targets exporting precursor_heat_* (empty otherwise).
	Heat []TargetHeat
	// HottestTarget names the target with the most heat-accounted ops
	// ("" when no target exports heat or all are idle).
	HottestTarget string
	// HeatSkew is the fleet-wide load imbalance across the heat-exporting
	// targets' op counts — the cross-shard skew the hash ring is supposed
	// to keep near {0, 1}.
	HeatSkew heat.Skew
	// Anomalies are human-readable flags raised by this rollup: down
	// targets, budget overburn, integrity events present.
	Anomalies []string
}

// Snapshot computes a Rollup from the latest scrape state. It does not
// scrape; pair with ScrapeOnce or Start.
func (a *Aggregator) Snapshot() Rollup {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Rollup{SLO: a.cfg.SLO, AuditEvents: make(map[string]uint64)}
	var availSum float64
	worst := make(map[[2]string]StageLatency)
	for _, t := range a.targets {
		ts := TargetStatus{
			Name: t.name, URL: t.url, Up: t.up, Err: t.err,
			Availability: t.availability(), Scrapes: t.scrapes, Failures: t.failures,
		}
		r.Targets = append(r.Targets, ts)
		if t.up {
			r.TargetsUp++
		}
		availSum += ts.Availability
		th := TargetHeat{Name: t.name}
		heatSeen := false
		for _, s := range t.samples {
			// A target emitting NaN or ±Inf (an empty summary window, a
			// division by zero upstream) must not poison worst-of or sum
			// folds: NaN compares false against everything, so a NaN that
			// arrived first would hold its slot forever.
			if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				continue
			}
			switch s.Name {
			case "precursor_heat_ops_total":
				th.Ops += uint64(s.Value)
				heatSeen = true
			case "precursor_heat_op_rate":
				th.Rate += s.Value
				heatSeen = true
			case "precursor_heat_range_skew_cv":
				if s.Value > th.RangeSkew.CV {
					th.RangeSkew.CV = s.Value
				}
			case "precursor_heat_range_skew_max_mean":
				if s.Value > th.RangeSkew.MaxMean {
					th.RangeSkew.MaxMean = s.Value
				}
			case "precursor_cluster_quorum_shortfalls_total":
				r.QuorumShortfalls += uint64(s.Value)
			case "precursor_cluster_read_failovers_total":
				r.ReadFailovers += uint64(s.Value)
			case "precursor_cluster_repairs_total":
				r.Repairs += uint64(s.Value)
			case "precursor_cluster_repair_failures_total":
				r.RepairFailures += uint64(s.Value)
			case "precursor_auth_failures_total":
				r.AuthFailures += uint64(s.Value)
			case "precursor_replays_total":
				r.Replays += uint64(s.Value)
			case "precursor_audit_events_total":
				if kind := s.Labels["kind"]; kind != "" {
					r.AuditEvents[kind] += uint64(s.Value)
				}
			case "precursor_stage_latency_seconds":
				if s.Labels["quantile"] != "0.99" {
					continue
				}
				key := [2]string{s.Labels["side"], s.Labels["stage"]}
				if cur, ok := worst[key]; !ok || s.Value > cur.P99 {
					worst[key] = StageLatency{Side: key[0], Stage: key[1], P99: s.Value, Target: t.name}
				}
			}
		}
		if heatSeen {
			r.Heat = append(r.Heat, th)
		}
	}
	if len(r.Heat) > 0 {
		ops := make([]uint64, len(r.Heat))
		var hottest uint64
		for i, th := range r.Heat {
			ops[i] = th.Ops
			if th.Ops > hottest {
				hottest = th.Ops
				r.HottestTarget = th.Name
			}
		}
		r.HeatSkew = heat.SkewOf(ops)
	} else {
		r.HeatSkew = heat.Skew{MaxMean: 1}
	}
	if len(a.targets) > 0 {
		r.Availability = availSum / float64(len(a.targets))
	}
	r.ErrorBudgetBurn = (1 - r.Availability) / (1 - r.SLO)
	for _, sl := range worst {
		r.StageP99 = append(r.StageP99, sl)
	}
	sort.Slice(r.StageP99, func(i, j int) bool {
		if r.StageP99[i].Side != r.StageP99[j].Side {
			return r.StageP99[i].Side < r.StageP99[j].Side
		}
		return r.StageP99[i].Stage < r.StageP99[j].Stage
	})
	for _, ts := range r.Targets {
		if !ts.Up && ts.Scrapes > 0 {
			r.Anomalies = append(r.Anomalies, fmt.Sprintf("target %s down: %s", ts.Name, ts.Err))
		}
	}
	if r.ErrorBudgetBurn >= 1 {
		r.Anomalies = append(r.Anomalies, fmt.Sprintf("error-budget burn %.2fx (availability %.4f vs SLO %g)", r.ErrorBudgetBurn, r.Availability, r.SLO))
	}
	if r.QuorumShortfalls > 0 {
		r.Anomalies = append(r.Anomalies, fmt.Sprintf("%d quorum shortfalls", r.QuorumShortfalls))
	}
	if r.RepairFailures > 0 {
		r.Anomalies = append(r.Anomalies, fmt.Sprintf("%d repair failures", r.RepairFailures))
	}
	if r.AuthFailures > 0 {
		r.Anomalies = append(r.Anomalies, fmt.Sprintf("%d auth failures", r.AuthFailures))
	}
	if r.Replays > 0 {
		r.Anomalies = append(r.Anomalies, fmt.Sprintf("%d replay rejections", r.Replays))
	}
	for _, kind := range []string{"byzantine_failover", "rollback", "snapshot_auth", "attest_fail"} {
		if n := r.AuditEvents[kind]; n > 0 {
			r.Anomalies = append(r.Anomalies, fmt.Sprintf("%d %s audit events", n, kind))
		}
	}
	if r.HottestTarget != "" && r.HeatSkew.MaxMean >= heatSkewAnomalyMaxMean {
		var totalOps uint64
		for _, th := range r.Heat {
			totalOps += th.Ops
		}
		if totalOps >= heatSkewMinOps {
			r.Anomalies = append(r.Anomalies, fmt.Sprintf(
				"load skew: hottest shard %s at %.2fx mean (cv %.2f) — see its /debug/heat for the hot keys",
				r.HottestTarget, r.HeatSkew.MaxMean, r.HeatSkew.CV))
		}
	}
	return r
}

// WriteProm renders the current rollup in the Prometheus text format —
// the payload of the /fleet endpoint.
func (a *Aggregator) WriteProm(w io.Writer) error {
	r := a.Snapshot()
	var b strings.Builder
	head := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	head("precursor_fleet_targets", "Configured scrape targets", "gauge")
	fmt.Fprintf(&b, "precursor_fleet_targets %d\n", len(r.Targets))
	head("precursor_fleet_targets_up", "Targets whose last scrape succeeded", "gauge")
	fmt.Fprintf(&b, "precursor_fleet_targets_up %d\n", r.TargetsUp)
	head("precursor_fleet_availability", "Mean windowed scrape availability across targets", "gauge")
	fmt.Fprintf(&b, "precursor_fleet_availability %g\n", r.Availability)
	head("precursor_fleet_slo", "Configured availability objective", "gauge")
	fmt.Fprintf(&b, "precursor_fleet_slo %g\n", r.SLO)
	head("precursor_fleet_error_budget_burn", "Error-budget burn rate: (1-availability)/(1-SLO)", "gauge")
	fmt.Fprintf(&b, "precursor_fleet_error_budget_burn %g\n", r.ErrorBudgetBurn)
	head("precursor_fleet_quorum_shortfalls_total", "Quorum shortfalls summed across the fleet", "counter")
	fmt.Fprintf(&b, "precursor_fleet_quorum_shortfalls_total %d\n", r.QuorumShortfalls)
	head("precursor_fleet_read_failovers_total", "Read failovers summed across the fleet", "counter")
	fmt.Fprintf(&b, "precursor_fleet_read_failovers_total %d\n", r.ReadFailovers)
	head("precursor_fleet_repairs_total", "Completed repairs summed across the fleet", "counter")
	fmt.Fprintf(&b, "precursor_fleet_repairs_total %d\n", r.Repairs)
	head("precursor_fleet_repair_failures_total", "Repair failures summed across the fleet", "counter")
	fmt.Fprintf(&b, "precursor_fleet_repair_failures_total %d\n", r.RepairFailures)
	head("precursor_fleet_auth_failures_total", "Authentication failures summed across the fleet", "counter")
	fmt.Fprintf(&b, "precursor_fleet_auth_failures_total %d\n", r.AuthFailures)
	head("precursor_fleet_replays_total", "Replay rejections summed across the fleet", "counter")
	fmt.Fprintf(&b, "precursor_fleet_replays_total %d\n", r.Replays)
	if len(r.AuditEvents) > 0 {
		head("precursor_fleet_audit_events_total", "Security audit events summed across the fleet, by kind", "counter")
		kinds := make([]string, 0, len(r.AuditEvents))
		for k := range r.AuditEvents {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "precursor_fleet_audit_events_total{kind=%q} %d\n", k, r.AuditEvents[k])
		}
	}
	head("precursor_fleet_target_up", "1 if the target's last scrape succeeded", "gauge")
	for _, ts := range r.Targets {
		up := 0
		if ts.Up {
			up = 1
		}
		fmt.Fprintf(&b, "precursor_fleet_target_up{target=%q} %d\n", ts.Name, up)
	}
	head("precursor_fleet_target_availability", "Windowed scrape availability per target", "gauge")
	for _, ts := range r.Targets {
		fmt.Fprintf(&b, "precursor_fleet_target_availability{target=%q} %g\n", ts.Name, ts.Availability)
	}
	if len(r.StageP99) > 0 {
		head("precursor_fleet_stage_p99_seconds", "Worst p99 stage latency anywhere in the fleet", "gauge")
		for _, sl := range r.StageP99 {
			fmt.Fprintf(&b, "precursor_fleet_stage_p99_seconds{side=%q,stage=%q,target=%q} %g\n", sl.Side, sl.Stage, sl.Target, sl.P99)
		}
	}
	if len(r.Heat) > 0 {
		head("precursor_fleet_heat_ops_total", "Heat-accounted operations per target (all kinds and vantages)", "counter")
		for _, th := range r.Heat {
			fmt.Fprintf(&b, "precursor_fleet_heat_ops_total{target=%q} %d\n", th.Name, th.Ops)
		}
		head("precursor_fleet_heat_op_rate", "EWMA heat-accounted op rate per target in ops/sec", "gauge")
		for _, th := range r.Heat {
			fmt.Fprintf(&b, "precursor_fleet_heat_op_rate{target=%q} %g\n", th.Name, th.Rate)
		}
		head("precursor_fleet_heat_range_skew_max_mean", "Worst within-target key-range imbalance (hot keys inside the shard's ring arc)", "gauge")
		for _, th := range r.Heat {
			fmt.Fprintf(&b, "precursor_fleet_heat_range_skew_max_mean{target=%q} %g\n", th.Name, th.RangeSkew.MaxMean)
		}
		head("precursor_fleet_heat_skew_cv", "Cross-target load imbalance: coefficient of variation of per-target heat ops", "gauge")
		fmt.Fprintf(&b, "precursor_fleet_heat_skew_cv %g\n", r.HeatSkew.CV)
		head("precursor_fleet_heat_skew_max_mean", "Cross-target load imbalance: hottest target's ops over the mean", "gauge")
		fmt.Fprintf(&b, "precursor_fleet_heat_skew_max_mean %g\n", r.HeatSkew.MaxMean)
		if r.HottestTarget != "" {
			head("precursor_fleet_hottest_target", "Constant-1 gauge whose target label names the most-loaded target", "gauge")
			fmt.Fprintf(&b, "precursor_fleet_hottest_target{target=%q} 1\n", r.HottestTarget)
		}
	}
	head("precursor_fleet_anomalies", "Anomaly flags raised by the current rollup", "gauge")
	fmt.Fprintf(&b, "precursor_fleet_anomalies %d\n", len(r.Anomalies))
	for _, an := range r.Anomalies {
		fmt.Fprintf(&b, "precursor_fleet_anomaly{flag=%q} 1\n", an)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP serves the rollup as promtext — mount it at GET /fleet.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = a.WriteProm(w)
}
