package fleet

// Cross-node trace stitching: fetch every target's raw trace dump
// (/debug/traces?raw=1), re-anchor each process's monotonic span
// timestamps onto the shared wall-clock axis via its exported timebase,
// and group spans by trace id into end-to-end causal traces. A hedged
// read that touched one client and two replica servers becomes ONE
// stitched trace with spans from three processes; see OBSERVABILITY.md,
// "End-to-end trace correlation".

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"precursor/internal/obs"
)

// RawSet mirrors the JSON shape of one element of the
// /debug/traces?raw=1 payload (the root package's RawTraceSet).
// Duplicated here because internal/fleet must not import the root
// precursor package (the root package imports fleet).
type RawSet struct {
	// Side labels the tracer within the process ("client", "server", …).
	Side string `json:"side"`
	// TimeBaseUnixNano is the wall-clock instant (Unix nanoseconds) the
	// process's monotonic span timestamps are relative to.
	TimeBaseUnixNano int64 `json:"timebase_unix_nano"`
	// Traces are the tracer's retained recent traces.
	Traces []obs.Trace `json:"traces"`
}

// NodeTraces is one target's raw trace dump.
type NodeTraces struct {
	// Target names the scraped node (Target.Name).
	Target string
	// Sets are the tracers the node exports, each with its own timebase.
	Sets []RawSet
}

// TraceURL rewrites a target's metrics URL into its raw trace dump URL
// (path /debug/traces, query raw=1). An unparseable URL is returned
// unchanged so the fetch error names the real culprit.
func TraceURL(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil {
		return rawurl
	}
	u.Path = "/debug/traces"
	u.RawQuery = "raw=1"
	u.Fragment = ""
	return u.String()
}

// CollectTraces fetches every target's raw trace dump concurrently. A
// nil client gets DefaultScrapeTimeout. Nodes that answered are always
// returned; fetch failures are joined into the returned error, so a
// partially-down fleet still yields the traces the live nodes hold.
func CollectTraces(client *http.Client, targets []Target) ([]NodeTraces, error) {
	if client == nil {
		client = &http.Client{Timeout: DefaultScrapeTimeout}
	}
	nodes := make([]NodeTraces, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			sets, err := fetchTraces(client, TraceURL(t.URL))
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", t.Name, err)
				return
			}
			nodes[i] = NodeTraces{Target: t.Name, Sets: sets}
		}(i, t)
	}
	wg.Wait()
	out := nodes[:0]
	for i := range nodes {
		if errs[i] == nil {
			out = append(out, nodes[i])
		}
	}
	return out, errors.Join(errs...)
}

// fetchTraces GETs and decodes one raw trace dump.
func fetchTraces(client *http.Client, url string) ([]RawSet, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var sets []RawSet
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sets); err != nil {
		return nil, fmt.Errorf("decode traces: %w", err)
	}
	return sets, nil
}

// StitchedSpan is one process-local operation placed on the shared
// absolute time axis. Trace is a re-anchored copy: its Start/End and
// every span Start are absolute Unix nanoseconds, not process-relative.
type StitchedSpan struct {
	// Target names the node the span was recorded on.
	Target string
	// Side names the tracer within the node ("client", "server", …).
	Side string
	// Depth is the span's distance from the stitched trace's root (0 for
	// the root itself, or for an orphan whose parent span wasn't
	// retained).
	Depth int
	// Trace is the operation record, re-anchored to absolute time.
	Trace obs.Trace
}

// Stitched is one end-to-end trace assembled from the spans every
// process recorded under the same trace id.
type Stitched struct {
	// ID is the shared trace id.
	ID uint64
	// Kind is the root (earliest) span's operation kind.
	Kind string
	// Start and End bound the whole trace in absolute Unix nanoseconds.
	Start, End int64
	// Err is the first non-empty span error, "" if every span succeeded.
	Err string
	// Procs counts the distinct targets that contributed spans.
	Procs int
	// Spans are the member operations, parents before children, ties by
	// start time.
	Spans []StitchedSpan
}

// Dur returns the stitched trace's end-to-end duration.
func (s *Stitched) Dur() time.Duration { return time.Duration(s.End - s.Start) }

// Stitch groups every span in the given dumps by trace id and assembles
// the groups into end-to-end traces, worst first: errored traces ahead
// of clean ones, slower ahead of faster. Span timestamps are re-anchored
// from each process's monotonic timebase to absolute Unix nanoseconds,
// so spans from different machines land on one comparable axis (subject
// to those machines' wall-clock agreement).
func Stitch(nodes []NodeTraces) []Stitched {
	groups := make(map[uint64][]StitchedSpan)
	for _, node := range nodes {
		for _, set := range node.Sets {
			for _, tr := range set.Traces {
				if tr.ID == 0 {
					continue
				}
				anchored := tr
				anchored.Start += set.TimeBaseUnixNano
				anchored.End += set.TimeBaseUnixNano
				anchored.Spans = append([]obs.Span(nil), tr.Spans...)
				for i := range anchored.Spans {
					anchored.Spans[i].Start += set.TimeBaseUnixNano
				}
				groups[tr.ID] = append(groups[tr.ID], StitchedSpan{
					Target: node.Target, Side: set.Side, Trace: anchored,
				})
			}
		}
	}
	out := make([]Stitched, 0, len(groups))
	for id, spans := range groups {
		out = append(out, assemble(id, spans))
	}
	sort.Slice(out, func(i, j int) bool {
		ei, ej := out[i].Err != "", out[j].Err != ""
		if ei != ej {
			return ei
		}
		if di, dj := out[i].Dur(), out[j].Dur(); di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// assemble orders one trace's spans causally and derives its summary.
func assemble(id uint64, spans []StitchedSpan) Stitched {
	sort.Slice(spans, func(i, j int) bool {
		if a, b := spans[i].Trace.Start, spans[j].Trace.Start; a != b {
			return a < b
		}
		return spans[i].Trace.Span < spans[j].Trace.Span
	})
	// Depth by parent links; a missing parent (span not retained on its
	// node, or trimmed from the ring) leaves the child at depth 0.
	index := make(map[uint64]int, len(spans))
	for i, sp := range spans {
		index[sp.Trace.Span] = i
	}
	for i := range spans {
		depth, at := 0, spans[i].Trace.Parent
		for at != 0 {
			j, ok := index[at]
			if !ok || depth >= len(spans) {
				break
			}
			depth++
			at = spans[j].Trace.Parent
		}
		spans[i].Depth = depth
	}
	st := Stitched{ID: id, Kind: spans[0].Trace.Kind, Spans: spans}
	st.Start, st.End = spans[0].Trace.Start, spans[0].Trace.End
	procs := make(map[string]struct{}, len(spans))
	for _, sp := range spans {
		if sp.Trace.Start < st.Start {
			st.Start = sp.Trace.Start
		}
		if sp.Trace.End > st.End {
			st.End = sp.Trace.End
		}
		if st.Err == "" && sp.Trace.Err != "" {
			st.Err = sp.Trace.Err
		}
		procs[sp.Target] = struct{}{}
	}
	st.Procs = len(procs)
	return st
}

// WriteStitchedChrome emits stitched traces as Chrome trace_event JSON:
// one process row per contributing target/side pair, so an end-to-end
// trace renders as aligned bars across the nodes it touched. Load the
// output in Perfetto or chrome://tracing.
func WriteStitchedChrome(w io.Writer, traces []Stitched) error {
	order := []string{}
	sets := map[string]*obs.TraceSet{}
	for _, st := range traces {
		for _, sp := range st.Spans {
			key := sp.Target + "/" + sp.Side
			set, ok := sets[key]
			if !ok {
				set = &obs.TraceSet{Side: key}
				sets[key] = set
				order = append(order, key)
			}
			set.Traces = append(set.Traces, sp.Trace)
		}
	}
	flat := make([]obs.TraceSet, len(order))
	for i, key := range order {
		flat[i] = *sets[key]
	}
	return obs.WriteChromeTrace(w, flat)
}

// FormatStitched pretty-prints up to n stitched traces (0 or negative
// means all), one block per trace: a summary line, then each span
// indented by causal depth with its offset from the trace start.
func FormatStitched(traces []Stitched, n int) string {
	if n <= 0 || n > len(traces) {
		n = len(traces)
	}
	var b strings.Builder
	for _, st := range traces[:n] {
		fmt.Fprintf(&b, "trace %016x %s dur=%s spans=%d procs=%d",
			st.ID, st.Kind, st.Dur().Round(time.Microsecond), len(st.Spans), st.Procs)
		if st.Err != "" {
			fmt.Fprintf(&b, " err=%q", st.Err)
		}
		b.WriteByte('\n')
		for _, sp := range st.Spans {
			tr := &sp.Trace
			fmt.Fprintf(&b, "  %s+%-11s %s/%s %s dur=%s oid=%d",
				strings.Repeat("  ", sp.Depth),
				time.Duration(tr.Start-st.Start).Round(time.Microsecond),
				sp.Target, sp.Side, tr.Kind,
				tr.Dur().Round(time.Microsecond), tr.Oid)
			if tr.Group != "" {
				fmt.Fprintf(&b, " group=%s", tr.Group)
			}
			if tr.Unconfirmed {
				b.WriteString(" unconfirmed")
			}
			if tr.Err != "" {
				fmt.Fprintf(&b, " err=%q", tr.Err)
			}
			for _, f := range tr.Faults {
				fmt.Fprintf(&b, "\n  %s  ! %s", strings.Repeat("  ", sp.Depth), f)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
