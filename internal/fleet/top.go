package fleet

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// WriteTop renders the rollup as the `precursor-cluster -top` terminal
// view: a fleet header line, a per-target table, the replication and
// security counter summaries, the worst per-stage p99s, and any raised
// anomaly flags.
func WriteTop(w io.Writer, r Rollup) {
	fmt.Fprintf(w, "PRECURSOR FLEET  targets %d/%d up  availability %.4f  SLO %g  budget-burn %.2fx\n\n",
		r.TargetsUp, len(r.Targets), r.Availability, r.SLO, r.ErrorBudgetBurn)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TARGET\tSTATE\tAVAIL\tSCRAPES\tFAILS\tERROR")
	for _, t := range r.Targets {
		state := "up"
		if !t.Up {
			state = "DOWN"
		}
		errText := t.Err
		if len(errText) > 48 {
			errText = errText[:45] + "..."
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%d\t%d\t%s\n", t.Name, state, t.Availability, t.Scrapes, t.Failures, errText)
	}
	tw.Flush()

	fmt.Fprintf(w, "\nREPLICATION  shortfalls=%d read-failovers=%d repairs=%d repair-failures=%d\n",
		r.QuorumShortfalls, r.ReadFailovers, r.Repairs, r.RepairFailures)
	fmt.Fprintf(w, "SECURITY     auth-failures=%d replays=%d", r.AuthFailures, r.Replays)
	if len(r.AuditEvents) > 0 {
		kinds := make([]string, 0, len(r.AuditEvents))
		for k := range r.AuditEvents {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprint(w, "  audit:")
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d", k, r.AuditEvents[k])
		}
	}
	fmt.Fprintln(w)

	if len(r.Heat) > 0 {
		fmt.Fprintf(w, "\nHEAT  hottest=%s  cross-shard max/mean=%.2fx cv=%.2f\n",
			orDash(r.HottestTarget), r.HeatSkew.MaxMean, r.HeatSkew.CV)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TARGET\tOPS\tRATE\tRANGE-SKEW")
		for _, th := range r.Heat {
			fmt.Fprintf(tw, "%s\t%d\t%.1f/s\t%.2fx\n", th.Name, th.Ops, th.Rate, th.RangeSkew.MaxMean)
		}
		tw.Flush()
	}

	if len(r.StageP99) > 0 {
		fmt.Fprintln(w, "\nWORST P99 PER STAGE")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SIDE\tSTAGE\tP99\tTARGET")
		for _, sl := range r.StageP99 {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", sl.Side, sl.Stage,
				time.Duration(sl.P99*float64(time.Second)).Round(time.Microsecond), sl.Target)
		}
		tw.Flush()
	}

	if len(r.Anomalies) > 0 {
		fmt.Fprintln(w, "\nANOMALIES")
		for _, an := range r.Anomalies {
			fmt.Fprintf(w, "  ! %s\n", an)
		}
	}
}

// orDash substitutes "-" for an empty field in the table view.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
