package fleet

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParsePromBasics(t *testing.T) {
	in := `# HELP precursor_puts_total Completed put operations
# TYPE precursor_puts_total counter
precursor_puts_total 42

precursor_ready 1
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.00123
precursor_cluster_shard_up{shard="127.0.0.1:7100",group="g0"} 1
precursor_fleet_anomaly{flag="target \"x\" down: dial\ntimeout"} 1
`
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	if samples[0].Name != "precursor_puts_total" || samples[0].Value != 42 {
		t.Fatalf("sample 0: %+v", samples[0])
	}
	if samples[2].Labels["quantile"] != "0.99" || samples[2].Labels["side"] != "client" {
		t.Fatalf("sample 2 labels: %+v", samples[2].Labels)
	}
	if samples[3].Labels["shard"] != "127.0.0.1:7100" {
		t.Fatalf("sample 3 labels: %+v", samples[3].Labels)
	}
	if want := "target \"x\" down: dial\ntimeout"; samples[4].Labels["flag"] != want {
		t.Fatalf("escape handling: %q, want %q", samples[4].Labels["flag"], want)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"precursor_puts_total",
		"precursor_puts_total notanumber",
		`precursor_x{unterminated="v 1`,
		`precursor_x{novalue} 1`,
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q) accepted malformed input", bad)
		}
	}
}

// promTarget serves a fixed metrics payload.
func promTarget(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestAggregatorRollup(t *testing.T) {
	a1 := promTarget(t, `precursor_cluster_quorum_shortfalls_total 3
precursor_cluster_read_failovers_total 2
precursor_cluster_repairs_total 1
precursor_auth_failures_total 4
precursor_audit_events_total{kind="breaker_trip"} 2
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.002
`)
	a2 := promTarget(t, `precursor_replays_total 5
precursor_audit_events_total{kind="breaker_trip"} 1
precursor_audit_events_total{kind="byzantine_failover"} 1
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.004
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.5"} 0.001
`)
	agg, err := New(Config{Targets: []Target{
		{Name: "t1", URL: a1.URL},
		{Name: "t2", URL: a2.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if r.TargetsUp != 2 || r.Availability != 1 {
		t.Fatalf("up=%d avail=%g, want 2 and 1", r.TargetsUp, r.Availability)
	}
	if r.ErrorBudgetBurn != 0 {
		t.Fatalf("burn=%g, want 0", r.ErrorBudgetBurn)
	}
	if r.QuorumShortfalls != 3 || r.ReadFailovers != 2 || r.Repairs != 1 {
		t.Fatalf("cluster counters: %+v", r)
	}
	if r.AuthFailures != 4 || r.Replays != 5 {
		t.Fatalf("security counters: %+v", r)
	}
	if r.AuditEvents["breaker_trip"] != 3 || r.AuditEvents["byzantine_failover"] != 1 {
		t.Fatalf("audit events: %+v", r.AuditEvents)
	}
	// Worst-of across targets: t2's 4ms wins.
	if len(r.StageP99) != 1 || r.StageP99[0].P99 != 0.004 || r.StageP99[0].Target != "t2" {
		t.Fatalf("stage p99: %+v", r.StageP99)
	}
	// Shortfalls, auth failures, replays and the byzantine audit kind all
	// flag anomalies.
	if len(r.Anomalies) < 4 {
		t.Fatalf("anomalies: %v", r.Anomalies)
	}
}

func TestAggregatorDownTarget(t *testing.T) {
	up := promTarget(t, "precursor_ready 1\n")
	down := promTarget(t, "")
	downURL := down.URL
	down.Close() // refuses connections from here on
	agg, err := New(Config{Targets: []Target{
		{Name: "up", URL: up.URL},
		{Name: "down", URL: downURL},
	}, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if r.TargetsUp != 1 {
		t.Fatalf("TargetsUp=%d, want 1", r.TargetsUp)
	}
	if math.Abs(r.Availability-0.5) > 1e-9 {
		t.Fatalf("Availability=%g, want 0.5", r.Availability)
	}
	if r.ErrorBudgetBurn < 1 {
		t.Fatalf("burn=%g, want >= 1 with half the fleet down", r.ErrorBudgetBurn)
	}
	foundDown, foundBurn := false, false
	for _, an := range r.Anomalies {
		if strings.Contains(an, "target down down") || strings.Contains(an, "target down") {
			foundDown = true
		}
		if strings.Contains(an, "error-budget burn") {
			foundBurn = true
		}
	}
	if !foundDown || !foundBurn {
		t.Fatalf("anomalies missing down/burn flags: %v", r.Anomalies)
	}
}

// TestWritePromRoundTrip feeds /fleet output back through ParseProm —
// the promtext round-trip the satellite task demands.
func TestWritePromRoundTrip(t *testing.T) {
	src := promTarget(t, `precursor_cluster_quorum_shortfalls_total 7
precursor_cluster_read_failovers_total 2
precursor_audit_events_total{kind="replay"} 9
`)
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	var buf bytes.Buffer
	if err := agg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("fleet output failed to re-parse: %v\n%s", err, buf.String())
	}
	byName := func(name string) (Sample, bool) {
		for _, s := range samples {
			if s.Name == name {
				return s, true
			}
		}
		return Sample{}, false
	}
	if s, ok := byName("precursor_fleet_quorum_shortfalls_total"); !ok || s.Value != 7 {
		t.Fatalf("quorum shortfalls: %+v ok=%v", s, ok)
	}
	if s, ok := byName("precursor_fleet_read_failovers_total"); !ok || s.Value != 2 {
		t.Fatalf("read failovers: %+v ok=%v", s, ok)
	}
	if s, ok := byName("precursor_fleet_audit_events_total"); !ok || s.Labels["kind"] != "replay" || s.Value != 9 {
		t.Fatalf("audit events: %+v ok=%v", s, ok)
	}
	if s, ok := byName("precursor_fleet_availability"); !ok || s.Value != 1 {
		t.Fatalf("availability: %+v ok=%v", s, ok)
	}
}

func TestServeHTTPAndTop(t *testing.T) {
	src := promTarget(t, "precursor_cluster_repairs_total 1\nprecursor_stage_latency_seconds{side=\"server\",stage=\"srv_apply\",quantile=\"0.99\"} 0.0001\n")
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	rec := httptest.NewRecorder()
	agg.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "precursor_fleet_repairs_total 1") {
		t.Fatalf("ServeHTTP: code=%d body=%q", rec.Code, rec.Body.String())
	}
	var top bytes.Buffer
	WriteTop(&top, agg.Snapshot())
	out := top.String()
	for _, want := range []string{"PRECURSOR FLEET", "repairs=1", "srv_apply"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTop output missing %q:\n%s", want, out)
		}
	}
}

// TestParsePromNaNInfQuantiles covers summary families whose windows
// are empty or degenerate: the text format spells those NaN/+Inf/-Inf,
// ParseProm must accept them (they are valid floats), and the rollup
// fold must not let them poison worst-of comparisons or counter sums.
func TestParsePromNaNInfQuantiles(t *testing.T) {
	in := `precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} NaN
precursor_stage_latency_seconds{side="client",stage="cli_verify",quantile="0.99"} +Inf
precursor_stage_latency_seconds{side="server",stage="srv_apply",quantile="0.99"} -Inf
`
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if !math.IsNaN(samples[0].Value) {
		t.Fatalf("sample 0: %+v, want NaN", samples[0])
	}
	if !math.IsInf(samples[1].Value, 1) || !math.IsInf(samples[2].Value, -1) {
		t.Fatalf("Inf handling: %+v %+v", samples[1], samples[2])
	}

	// The NaN target is listed first, so without the rollup's guard its
	// NaN would claim the cli_total slot and block t2's real value.
	nan := promTarget(t, `precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} NaN
precursor_stage_latency_seconds{side="client",stage="cli_verify",quantile="0.99"} +Inf
precursor_heat_op_rate{side="server",kind="put"} NaN
`)
	real := promTarget(t, `precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.002
`)
	agg, err := New(Config{Targets: []Target{
		{Name: "t-nan", URL: nan.URL},
		{Name: "t-real", URL: real.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if len(r.StageP99) != 1 || r.StageP99[0].Stage != "cli_total" {
		t.Fatalf("stage p99 fold: %+v, want only cli_total (NaN and Inf skipped)", r.StageP99)
	}
	if r.StageP99[0].P99 != 0.002 || r.StageP99[0].Target != "t-real" {
		t.Fatalf("NaN displaced the real p99: %+v", r.StageP99[0])
	}
	for _, th := range r.Heat {
		if math.IsNaN(th.Rate) {
			t.Fatalf("NaN leaked into heat rate: %+v", th)
		}
	}
}

// TestAggregatorDuplicateMetricNames pins the aggregator's duplicate
// semantics: the same family appearing twice within one scrape body
// sums (two vantage labels of one counter), while re-scrapes of the
// same target replace its samples — counters must not double-count
// across scrape rounds.
func TestAggregatorDuplicateMetricNames(t *testing.T) {
	src := promTarget(t, `precursor_cluster_quorum_shortfalls_total 3
precursor_cluster_quorum_shortfalls_total 2
precursor_heat_ops_total{side="server",kind="put"} 10
precursor_heat_ops_total{side="server",kind="get"} 30
precursor_heat_ops_total{side="router",kind="get"} 5
`)
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if r.QuorumShortfalls != 5 {
		t.Fatalf("within-scrape duplicates: got %d, want 3+2=5", r.QuorumShortfalls)
	}
	if len(r.Heat) != 1 || r.Heat[0].Ops != 45 {
		t.Fatalf("heat ops across labels: %+v, want 45", r.Heat)
	}
	// Two more scrape rounds: the totals must stay put, not triple.
	agg.ScrapeOnce()
	agg.ScrapeOnce()
	r = agg.Snapshot()
	if r.QuorumShortfalls != 5 || r.Heat[0].Ops != 45 {
		t.Fatalf("re-scrape doubled counters: shortfalls=%d heat=%d", r.QuorumShortfalls, r.Heat[0].Ops)
	}
}

// TestAggregatorHTTP500MidWindow flips a target from healthy to HTTP
// 500 partway through the availability window: the target must read as
// down with the status in its error, availability must reflect the
// mixed window, and the last good scrape's counters must still feed
// the rollup (last-known values, not zeros).
func TestAggregatorHTTP500MidWindow(t *testing.T) {
	healthy := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy {
			http.Error(w, "internal error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte("precursor_cluster_repairs_total 4\n"))
	}))
	t.Cleanup(srv.Close)
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: srv.URL}}, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	agg.ScrapeOnce()
	healthy = false
	agg.ScrapeOnce()
	agg.ScrapeOnce()
	r := agg.Snapshot()
	ts := r.Targets[0]
	if ts.Up {
		t.Fatal("target still up after HTTP 500s")
	}
	if !strings.Contains(ts.Err, "HTTP 500") {
		t.Fatalf("error text: %q, want HTTP 500", ts.Err)
	}
	if math.Abs(ts.Availability-0.5) > 1e-9 {
		t.Fatalf("availability=%g, want 0.5 (2 of 4 windowed scrapes failed)", ts.Availability)
	}
	if ts.Scrapes != 4 || ts.Failures != 2 {
		t.Fatalf("scrapes=%d failures=%d, want 4 and 2", ts.Scrapes, ts.Failures)
	}
	if r.Repairs != 4 {
		t.Fatalf("last-known counters lost on failure: repairs=%d, want 4", r.Repairs)
	}
	foundDown := false
	for _, an := range r.Anomalies {
		if strings.Contains(an, "HTTP 500") {
			foundDown = true
		}
	}
	if !foundDown {
		t.Fatalf("no down anomaly naming HTTP 500: %v", r.Anomalies)
	}
}

// TestFleetHeatRollup drives the heat fold end to end: per-target heat
// summaries, hottest-target election, cross-shard skew, the /fleet
// promtext families, the -top HEAT pane and the load-skew anomaly.
func TestFleetHeatRollup(t *testing.T) {
	hot := promTarget(t, `precursor_heat_ops_total{side="server",kind="put"} 300
precursor_heat_ops_total{side="server",kind="get"} 2700
precursor_heat_op_rate{side="server",kind="get"} 90.5
precursor_heat_range_skew_cv{side="server"} 1.4
precursor_heat_range_skew_max_mean{side="server"} 6.2
`)
	cold := promTarget(t, `precursor_heat_ops_total{side="server",kind="get"} 100
precursor_heat_op_rate{side="server",kind="get"} 3.1
precursor_heat_range_skew_cv{side="server"} 0.2
precursor_heat_range_skew_max_mean{side="server"} 1.3
`)
	bare := promTarget(t, "precursor_ready 1\n") // no heat exported
	agg, err := New(Config{Targets: []Target{
		{Name: "hot", URL: hot.URL},
		{Name: "cold", URL: cold.URL},
		{Name: "bare", URL: bare.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if len(r.Heat) != 2 {
		t.Fatalf("heat targets: %+v, want 2 (bare target excluded)", r.Heat)
	}
	if r.Heat[0].Name != "hot" || r.Heat[0].Ops != 3000 || r.Heat[0].Rate != 90.5 {
		t.Fatalf("hot target heat: %+v", r.Heat[0])
	}
	if r.Heat[0].RangeSkew.MaxMean != 6.2 || r.Heat[0].RangeSkew.CV != 1.4 {
		t.Fatalf("hot target range skew: %+v", r.Heat[0].RangeSkew)
	}
	if r.HottestTarget != "hot" {
		t.Fatalf("hottest=%q, want hot", r.HottestTarget)
	}
	// ops {3000, 100}: mean 1550, max/mean ~1.935 — skewed but below the
	// 2.0 anomaly threshold.
	if r.HeatSkew.MaxMean < 1.9 || r.HeatSkew.MaxMean > 2.0 {
		t.Fatalf("fleet heat skew: %+v", r.HeatSkew)
	}
	var buf bytes.Buffer
	if err := agg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`precursor_fleet_heat_ops_total{target="hot"} 3000`,
		`precursor_fleet_heat_op_rate{target="cold"} 3.1`,
		`precursor_fleet_heat_range_skew_max_mean{target="hot"} 6.2`,
		`precursor_fleet_hottest_target{target="hot"} 1`,
		"precursor_fleet_heat_skew_max_mean ",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/fleet missing %q:\n%s", want, buf.String())
		}
	}
	var top bytes.Buffer
	WriteTop(&top, r)
	for _, want := range []string{"HEAT", "hottest=hot", "90.5/s", "6.20x"} {
		if !strings.Contains(top.String(), want) {
			t.Fatalf("-top HEAT pane missing %q:\n%s", want, top.String())
		}
	}
}

// TestFleetHeatSkewAnomaly crosses the skew-anomaly thresholds (>= 2x
// max/mean with >= 1000 total ops) and expects the actionable flag.
func TestFleetHeatSkewAnomaly(t *testing.T) {
	// Four shards: max/mean over N counters tops out at N, so a 2x
	// threshold needs more than two targets to be crossable at all.
	hot := promTarget(t, `precursor_heat_ops_total{side="server",kind="get"} 5000
`)
	cold := promTarget(t, `precursor_heat_ops_total{side="server",kind="get"} 100
`)
	agg, err := New(Config{Targets: []Target{
		{Name: "shard0", URL: hot.URL},
		{Name: "shard1", URL: cold.URL},
		{Name: "shard2", URL: cold.URL},
		{Name: "shard3", URL: cold.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	r := agg.Snapshot()
	found := false
	for _, an := range r.Anomalies {
		if strings.Contains(an, "load skew") && strings.Contains(an, "shard0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no load-skew anomaly naming shard0: %v", r.Anomalies)
	}
}

func TestStartAndClose(t *testing.T) {
	src := promTarget(t, "precursor_ready 1\n")
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	agg.Start()
	defer agg.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r := agg.Snapshot(); r.TargetsUp == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background scrape never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
