package fleet

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParsePromBasics(t *testing.T) {
	in := `# HELP precursor_puts_total Completed put operations
# TYPE precursor_puts_total counter
precursor_puts_total 42

precursor_ready 1
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.00123
precursor_cluster_shard_up{shard="127.0.0.1:7100",group="g0"} 1
precursor_fleet_anomaly{flag="target \"x\" down: dial\ntimeout"} 1
`
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	if samples[0].Name != "precursor_puts_total" || samples[0].Value != 42 {
		t.Fatalf("sample 0: %+v", samples[0])
	}
	if samples[2].Labels["quantile"] != "0.99" || samples[2].Labels["side"] != "client" {
		t.Fatalf("sample 2 labels: %+v", samples[2].Labels)
	}
	if samples[3].Labels["shard"] != "127.0.0.1:7100" {
		t.Fatalf("sample 3 labels: %+v", samples[3].Labels)
	}
	if want := "target \"x\" down: dial\ntimeout"; samples[4].Labels["flag"] != want {
		t.Fatalf("escape handling: %q, want %q", samples[4].Labels["flag"], want)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"precursor_puts_total",
		"precursor_puts_total notanumber",
		`precursor_x{unterminated="v 1`,
		`precursor_x{novalue} 1`,
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q) accepted malformed input", bad)
		}
	}
}

// promTarget serves a fixed metrics payload.
func promTarget(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestAggregatorRollup(t *testing.T) {
	a1 := promTarget(t, `precursor_cluster_quorum_shortfalls_total 3
precursor_cluster_read_failovers_total 2
precursor_cluster_repairs_total 1
precursor_auth_failures_total 4
precursor_audit_events_total{kind="breaker_trip"} 2
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.002
`)
	a2 := promTarget(t, `precursor_replays_total 5
precursor_audit_events_total{kind="breaker_trip"} 1
precursor_audit_events_total{kind="byzantine_failover"} 1
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.99"} 0.004
precursor_stage_latency_seconds{side="client",stage="cli_total",quantile="0.5"} 0.001
`)
	agg, err := New(Config{Targets: []Target{
		{Name: "t1", URL: a1.URL},
		{Name: "t2", URL: a2.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if r.TargetsUp != 2 || r.Availability != 1 {
		t.Fatalf("up=%d avail=%g, want 2 and 1", r.TargetsUp, r.Availability)
	}
	if r.ErrorBudgetBurn != 0 {
		t.Fatalf("burn=%g, want 0", r.ErrorBudgetBurn)
	}
	if r.QuorumShortfalls != 3 || r.ReadFailovers != 2 || r.Repairs != 1 {
		t.Fatalf("cluster counters: %+v", r)
	}
	if r.AuthFailures != 4 || r.Replays != 5 {
		t.Fatalf("security counters: %+v", r)
	}
	if r.AuditEvents["breaker_trip"] != 3 || r.AuditEvents["byzantine_failover"] != 1 {
		t.Fatalf("audit events: %+v", r.AuditEvents)
	}
	// Worst-of across targets: t2's 4ms wins.
	if len(r.StageP99) != 1 || r.StageP99[0].P99 != 0.004 || r.StageP99[0].Target != "t2" {
		t.Fatalf("stage p99: %+v", r.StageP99)
	}
	// Shortfalls, auth failures, replays and the byzantine audit kind all
	// flag anomalies.
	if len(r.Anomalies) < 4 {
		t.Fatalf("anomalies: %v", r.Anomalies)
	}
}

func TestAggregatorDownTarget(t *testing.T) {
	up := promTarget(t, "precursor_ready 1\n")
	down := promTarget(t, "")
	downURL := down.URL
	down.Close() // refuses connections from here on
	agg, err := New(Config{Targets: []Target{
		{Name: "up", URL: up.URL},
		{Name: "down", URL: downURL},
	}, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	agg.ScrapeOnce()
	r := agg.Snapshot()
	if r.TargetsUp != 1 {
		t.Fatalf("TargetsUp=%d, want 1", r.TargetsUp)
	}
	if math.Abs(r.Availability-0.5) > 1e-9 {
		t.Fatalf("Availability=%g, want 0.5", r.Availability)
	}
	if r.ErrorBudgetBurn < 1 {
		t.Fatalf("burn=%g, want >= 1 with half the fleet down", r.ErrorBudgetBurn)
	}
	foundDown, foundBurn := false, false
	for _, an := range r.Anomalies {
		if strings.Contains(an, "target down down") || strings.Contains(an, "target down") {
			foundDown = true
		}
		if strings.Contains(an, "error-budget burn") {
			foundBurn = true
		}
	}
	if !foundDown || !foundBurn {
		t.Fatalf("anomalies missing down/burn flags: %v", r.Anomalies)
	}
}

// TestWritePromRoundTrip feeds /fleet output back through ParseProm —
// the promtext round-trip the satellite task demands.
func TestWritePromRoundTrip(t *testing.T) {
	src := promTarget(t, `precursor_cluster_quorum_shortfalls_total 7
precursor_cluster_read_failovers_total 2
precursor_audit_events_total{kind="replay"} 9
`)
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	var buf bytes.Buffer
	if err := agg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("fleet output failed to re-parse: %v\n%s", err, buf.String())
	}
	byName := func(name string) (Sample, bool) {
		for _, s := range samples {
			if s.Name == name {
				return s, true
			}
		}
		return Sample{}, false
	}
	if s, ok := byName("precursor_fleet_quorum_shortfalls_total"); !ok || s.Value != 7 {
		t.Fatalf("quorum shortfalls: %+v ok=%v", s, ok)
	}
	if s, ok := byName("precursor_fleet_read_failovers_total"); !ok || s.Value != 2 {
		t.Fatalf("read failovers: %+v ok=%v", s, ok)
	}
	if s, ok := byName("precursor_fleet_audit_events_total"); !ok || s.Labels["kind"] != "replay" || s.Value != 9 {
		t.Fatalf("audit events: %+v ok=%v", s, ok)
	}
	if s, ok := byName("precursor_fleet_availability"); !ok || s.Value != 1 {
		t.Fatalf("availability: %+v ok=%v", s, ok)
	}
}

func TestServeHTTPAndTop(t *testing.T) {
	src := promTarget(t, "precursor_cluster_repairs_total 1\nprecursor_stage_latency_seconds{side=\"server\",stage=\"srv_apply\",quantile=\"0.99\"} 0.0001\n")
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce()
	rec := httptest.NewRecorder()
	agg.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "precursor_fleet_repairs_total 1") {
		t.Fatalf("ServeHTTP: code=%d body=%q", rec.Code, rec.Body.String())
	}
	var top bytes.Buffer
	WriteTop(&top, agg.Snapshot())
	out := top.String()
	for _, want := range []string{"PRECURSOR FLEET", "repairs=1", "srv_apply"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteTop output missing %q:\n%s", want, out)
		}
	}
}

func TestStartAndClose(t *testing.T) {
	src := promTarget(t, "precursor_ready 1\n")
	agg, err := New(Config{Targets: []Target{{Name: "s", URL: src.URL}}, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	agg.Start()
	defer agg.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r := agg.Snapshot(); r.TargetsUp == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background scrape never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
