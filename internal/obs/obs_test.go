package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerAndOpNoop drives every entry point through nil receivers:
// the disabled configuration must be inert and never panic.
func TestNilTracerAndOpNoop(t *testing.T) {
	var tr *Tracer
	if got := tr.Start(0, "put"); got != nil {
		t.Fatalf("nil tracer Start returned %v", got)
	}
	tr.NoteFault("ignored")
	tr.SetSlowThreshold(time.Second)
	if tr.Snapshot() != nil || tr.Recent() != nil {
		t.Fatal("nil tracer snapshot/recent not nil")
	}
	var op *Op
	if op.Now() != 0 {
		t.Fatal("nil op Now() != 0")
	}
	op.SetKind("x")
	op.SetClient(1)
	op.SetOid(2)
	op.SetError(nil)
	op.MarkUnconfirmed()
	op.Span(CliSeal, 0)
	op.SpanAt(SrvApply, 0, 1)
	op.AttemptSpan(1, 0)
	op.Finish()
}

// TestStageNamesUnique guards the export-name table.
func TestStageNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || name == "stage?" {
			t.Fatalf("stage %d has no name", s)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "stage?" {
		t.Fatal("out-of-range stage name")
	}
}

// TestOpRecordsSpansAndHistograms checks the main record → finish →
// snapshot/recent flow.
func TestOpRecordsSpansAndHistograms(t *testing.T) {
	tr := New(Config{Side: SideClient, Workers: 2, Ring: 8})
	op := tr.Start(0, "get")
	op.SetClient(7)
	op.SetOid(42)
	start := op.Now()
	time.Sleep(time.Millisecond)
	op.Span(CliSeal, start)
	op.AttemptSpan(1, start)
	op.SetError(nil)
	op.Finish()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.Kind != "get" || got.Client != 7 || got.Oid != 42 {
		t.Fatalf("trace identity wrong: %+v", got)
	}
	if len(got.Spans) != 3 { // cli_seal, cli_attempt, cli_total
		t.Fatalf("spans = %d, want 3: %v", len(got.Spans), got.Spans)
	}
	if last := got.Spans[len(got.Spans)-1]; last.Stage != CliTotal {
		t.Fatalf("last span = %v, want cli_total", last.Stage)
	}
	if got.Spans[1].Attempt != 1 {
		t.Fatalf("attempt span number = %d", got.Spans[1].Attempt)
	}
	if got.Dur() < time.Millisecond {
		t.Fatalf("total duration %v too short", got.Dur())
	}

	snap := tr.Snapshot()
	want := map[Stage]bool{CliSeal: true, CliAttempt: true, CliTotal: true}
	if len(snap) != len(want) {
		t.Fatalf("snapshot stages = %v", snap)
	}
	for _, sq := range snap {
		if !want[sq.Stage] || sq.Quantiles.Count != 1 {
			t.Fatalf("unexpected snapshot entry %+v", sq)
		}
	}
}

// TestRecentRingBounded checks the ring retains only the newest traces.
func TestRecentRingBounded(t *testing.T) {
	tr := New(Config{Side: SideServer, Ring: 4})
	for i := 0; i < 10; i++ {
		op := tr.Start(0, "put")
		op.SetOid(uint64(i))
		op.Finish()
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(recent))
	}
	for i, g := range recent {
		if g.Oid != uint64(6+i) {
			t.Fatalf("recent[%d].Oid = %d, want %d (oldest-first order)", i, g.Oid, 6+i)
		}
	}
}

// TestSpanOverflowStillHistogrammed checks that spans past the per-op
// bound are dropped from the stored trace but still counted.
func TestSpanOverflowStillHistogrammed(t *testing.T) {
	tr := New(Config{Side: SideClient, Ring: 2})
	op := tr.Start(0, "get")
	now := op.Now()
	for i := 0; i < maxSpans+10; i++ {
		op.SpanAt(CliBackoff, now, now+1000)
	}
	op.Finish()
	recent := tr.Recent()
	if len(recent) != 1 || len(recent[0].Spans) != maxSpans {
		t.Fatalf("stored spans = %d, want %d", len(recent[0].Spans), maxSpans)
	}
	for _, sq := range tr.Snapshot() {
		if sq.Stage == CliBackoff && sq.Quantiles.Count != maxSpans+10 {
			t.Fatalf("backoff histogram count = %d, want %d", sq.Quantiles.Count, maxSpans+10)
		}
	}
}

// TestSlowOpLogAndFaultAnnotation checks the slow threshold fires the
// structured log and overlapping fault notes attach to the trace.
func TestSlowOpLogAndFaultAnnotation(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := New(Config{Side: SideServer, Ring: 4, SlowThreshold: time.Millisecond, Logger: logger})

	op := tr.Start(1, "put")
	tr.NoteFault("w0-s1/c2s write#3 drop+2ms")
	time.Sleep(2 * time.Millisecond)
	op.MarkUnconfirmed()
	op.Finish()

	out := buf.String()
	if !strings.Contains(out, "slow operation") || !strings.Contains(out, "srv_total") {
		t.Fatalf("slow-op log missing: %q", out)
	}
	if !strings.Contains(out, "unconfirmed") || !strings.Contains(out, "drop") {
		t.Fatalf("slow-op log missing annotations: %q", out)
	}
	recent := tr.Recent()
	if len(recent) != 1 || len(recent[0].Faults) != 1 {
		t.Fatalf("fault annotation missing: %+v", recent)
	}

	// A fast op under the threshold must not log.
	buf.Reset()
	op = tr.Start(1, "get")
	op.Finish()
	if strings.Contains(buf.String(), "slow operation") {
		t.Fatalf("fast op logged as slow: %q", buf.String())
	}
}

// TestSlowOpRateLimit: a latency storm gets at most the burst of log
// lines plus ~1/SlowLogEvery after; the rest are counted, not printed,
// and the next admitted line carries the suppressed count.
func TestSlowOpRateLimit(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := New(Config{
		Side: SideServer, Ring: 4, SlowThreshold: time.Nanosecond,
		Logger: logger, SlowLogBurst: 3, SlowLogEvery: time.Hour,
	})
	const storm = 50
	for i := 0; i < storm; i++ {
		op := tr.Start(0, "put")
		time.Sleep(10 * time.Microsecond) // over the 1ns threshold
		op.Finish()
	}
	if got := strings.Count(buf.String(), "slow operation"); got != 3 {
		t.Fatalf("storm of %d emitted %d lines, want the burst of 3", storm, got)
	}
	if got := tr.SlowSuppressed(); got != storm-3 {
		t.Fatalf("SlowSuppressed = %d, want %d", got, storm-3)
	}

	// Refill one token and confirm the next line reports the backlog.
	tr.slowMu.Lock()
	tr.slowTokens = 1
	tr.slowMu.Unlock()
	buf.Reset()
	op := tr.Start(0, "get")
	time.Sleep(10 * time.Microsecond)
	op.Finish()
	out := buf.String()
	if !strings.Contains(out, "slow operation") || !strings.Contains(out, "suppressed_since_last=47") {
		t.Fatalf("refilled line missing suppressed_since_last: %q", out)
	}

	// Negative SlowLogEvery disables limiting.
	buf.Reset()
	unlimited := New(Config{
		Side: SideServer, Ring: 4, SlowThreshold: time.Nanosecond,
		Logger: logger, SlowLogBurst: 1, SlowLogEvery: -1,
	})
	for i := 0; i < 5; i++ {
		op := unlimited.Start(0, "put")
		time.Sleep(10 * time.Microsecond)
		op.Finish()
	}
	if got := strings.Count(buf.String(), "slow operation"); got != 5 {
		t.Fatalf("unlimited tracer emitted %d lines, want 5", got)
	}
	if unlimited.SlowSuppressed() != 0 {
		t.Fatalf("unlimited tracer suppressed %d", unlimited.SlowSuppressed())
	}

	var nilTracer *Tracer
	if nilTracer.SlowSuppressed() != 0 {
		t.Fatal("nil tracer SlowSuppressed")
	}
}

// TestChromeTraceJSON checks the /debug/traces payload shape: valid
// JSON, a traceEvents array of X events with µs timestamps, and the
// metadata rows viewers use for naming.
func TestChromeTraceJSON(t *testing.T) {
	tr := New(Config{Side: SideServer, Ring: 8})
	op := tr.Start(0, "get")
	s := op.Now()
	op.SpanAt(SrvPickup, s, s+1500)
	op.SpanAt(SrvVerify, s+1500, s+4000)
	op.SetOid(9)
	op.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []TraceSet{{Side: "server", Traces: tr.Recent()}}); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	var xEvents, meta int
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
			names[ev.Name] = true
			if ev.Ts < 0 || ev.Dur <= 0 {
				t.Fatalf("bad event bounds: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xEvents != 3 || meta != 2 {
		t.Fatalf("events X=%d M=%d, want 3/2", xEvents, meta)
	}
	for _, want := range []string{"srv_pickup", "srv_verify", "srv_total"} {
		if !names[want] {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}

	// Empty input still yields valid JSON.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &map[string]any{}); err != nil {
		t.Fatalf("empty trace JSON invalid: %v", err)
	}
}

// TestTracerConcurrent runs many workers recording, noting faults and
// snapshotting at once (meaningful under -race).
func TestTracerConcurrent(t *testing.T) {
	tr := New(Config{Side: SideServer, Workers: 4, Ring: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				op := tr.Start(w, "put")
				op.SetOid(uint64(i))
				op.Span(SrvApply, op.Now())
				op.Finish()
				if i%50 == 0 {
					tr.NoteFault("injected")
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
			_ = tr.Recent()
		}
	}()
	wg.Wait()
	<-done
	total := uint64(0)
	for _, sq := range tr.Snapshot() {
		if sq.Stage == SrvTotal {
			total = sq.Quantiles.Count
		}
	}
	if total != 8*500 {
		t.Fatalf("srv_total count = %d, want %d", total, 8*500)
	}
	if len(tr.Recent()) != 32 {
		t.Fatalf("recent = %d, want full ring 32", len(tr.Recent()))
	}
}
