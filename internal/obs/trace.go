package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// formatSpans renders a compact single-line stage breakdown for the
// slow-op log, e.g. "cli_seal=12µs cli_resp_wait=4.1ms cli_total=4.3ms".
func formatSpans(spans []Span) string {
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Stage.String())
		if sp.Attempt > 0 {
			fmt.Fprintf(&b, "#%d", sp.Attempt)
		}
		if sp.Replica != "" {
			fmt.Fprintf(&b, "[%s]", sp.Replica)
		}
		b.WriteByte('=')
		b.WriteString(time.Duration(sp.Dur).Round(100 * time.Nanosecond).String())
	}
	return b.String()
}

// TraceSet names one tracer's recent traces for WriteChromeTrace; the
// Side string becomes the process name in the trace viewer.
type TraceSet struct {
	// Side labels the process row ("server", "client", "shard0", …).
	Side string
	// Traces are the set's traces (e.g. Tracer.Recent()).
	Traces []Trace
}

// chromeEvent is one Chrome trace_event ("X" complete events plus "M"
// metadata), the subset Perfetto and chrome://tracing load.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the given trace sets as Chrome trace_event
// JSON: each set becomes one process (pid = set index), each trace one
// thread within it, each span one complete ("X") event. Timestamps are
// microseconds relative to the earliest span, as trace viewers expect.
func WriteChromeTrace(w io.Writer, sets []TraceSet) error {
	var base int64 = -1
	for _, set := range sets {
		for _, tr := range set.Traces {
			if base < 0 || tr.Start < base {
				base = tr.Start
			}
			for _, sp := range tr.Spans {
				if sp.Start < base {
					base = sp.Start
				}
			}
		}
	}
	if base < 0 {
		base = 0
	}
	us := func(nanos int64) float64 { return float64(nanos-base) / 1e3 }

	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayUnit: "ns"}
	for pid, set := range sets {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "precursor-" + set.Side},
		})
		for _, tr := range set.Traces {
			label := fmt.Sprintf("%s trace %d", tr.Kind, tr.ID)
			if tr.Err != "" {
				label += " (error)"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tr.ID,
				Args: map[string]any{"name": label},
			})
			for _, sp := range tr.Spans {
				args := map[string]any{
					"kind": tr.Kind,
					"oid":  tr.Oid,
				}
				if tr.Client != 0 {
					args["client"] = tr.Client
				}
				if tr.Group != "" {
					args["group"] = tr.Group
				}
				if sp.Attempt > 0 {
					args["attempt"] = sp.Attempt
				}
				if sp.Replica != "" {
					args["replica"] = sp.Replica
				}
				if sp.Stage == CliTotal || sp.Stage == SrvTotal {
					args["trace"] = fmt.Sprintf("%016x", tr.ID)
					args["span"] = fmt.Sprintf("%016x", tr.Span)
					if tr.Parent != 0 {
						args["parent"] = fmt.Sprintf("%016x", tr.Parent)
					}
					if tr.Err != "" {
						args["err"] = tr.Err
					}
					if tr.Unconfirmed {
						args["unconfirmed"] = true
					}
					if len(tr.Faults) > 0 {
						args["faults"] = tr.Faults
					}
				}
				dur := float64(sp.Dur) / 1e3
				if dur <= 0 {
					// Zero-duration events render invisibly; clamp to the
					// viewer's minimum visible width.
					dur = 0.001
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: sp.Stage.String(),
					Cat:  set.Side,
					Ph:   "X",
					Ts:   us(sp.Start),
					Dur:  dur,
					Pid:  pid,
					Tid:  tr.ID,
					Args: args,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
