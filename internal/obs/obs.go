// Package obs is Precursor's operation-tracing and stage-timing layer:
// the live counterpart of the bench harness's offline latency breakdowns
// (Figure 8), threaded through the whole hot path.
//
// Both sides of an operation record per-stage spans — the client times
// its payload cryptography, credit wait, ring write and response wait;
// the server times frame pickup, enclave verification, table/pool work
// and the reply path — into a Tracer. A Tracer keeps two things: sharded
// per-stage histograms (internal/hist) for quantile export on /metrics,
// and a bounded lock-free ring of recent complete traces for inspection
// via GET /debug/traces (Chrome trace_event JSON) and the slow-op log.
//
// The design constraint is the disabled cost: every recording entry
// point is a method on a nil-able *Op (or a nil-check on the *Tracer),
// so a server or client built without a Tracer pays one predictable
// branch per request and nothing else. The enabled cost is a handful of
// monotonic clock reads and one pooled allocation per operation.
//
// Security note (DESIGN.md §6): spans carry stage names, timestamps,
// operation ids and fault annotations only — never keys, values, or
// K_operation material. See OBSERVABILITY.md.
package obs

import (
	"log/slog"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"precursor/internal/hist"
)

// Stage identifies one timed segment of the operation pipeline. The
// cli_* stages are recorded by the client, the srv_* stages by the
// server; OBSERVABILITY.md maps each to its PROTOCOL.md message-flow
// step.
type Stage uint8

// Pipeline stages, in rough operation order.
const (
	// CliEncrypt is the client-side payload encryption + MAC under the
	// fresh K_operation (Algorithm 1; Put only).
	CliEncrypt Stage = iota
	// CliSeal is control-data encoding plus AEAD sealing under K_session,
	// and request-frame encoding.
	CliSeal
	// CliCreditWait is time spent waiting for request-ring credit before
	// the frame could be placed.
	CliCreditWait
	// CliRingWrite is the successful one-sided write of the request frame
	// into the server's ring.
	CliRingWrite
	// CliRespWait is the response poll loop: from frame sent to the
	// authenticated response for the in-flight oid.
	CliRespWait
	// CliVerify is client-side response payload verification: MAC
	// recompute + decrypt (Get only).
	CliVerify
	// CliBackoff is retry backoff sleep between read attempts.
	CliBackoff
	// CliAttempt spans one full attempt of a retried read; sibling
	// CliAttempt spans under one trace carry increasing Attempt numbers.
	CliAttempt
	// CliReplica spans one replica's share of a replicated cluster
	// operation: the per-replica child spans of a quorum write's fan-out
	// or a replicated read's failover sequence. The span's Replica field
	// names the member; the trace's Group field names the replica group.
	CliReplica
	// CliTotal spans the whole client operation (recorded automatically
	// on Finish for client-side tracers).
	CliTotal
	// SrvPickup is poll-to-pickup: from the trusted thread's poll-loop
	// iteration start to a complete frame being detected in a ring.
	SrvPickup
	// SrvDecode is untrusted request-frame decoding.
	SrvDecode
	// SrvVerify is the enclave's control-data handling: AEAD open of the
	// sealed control segment, control decoding, and the replay check
	// (Algorithm 2, lines 1–6).
	SrvVerify
	// SrvApply is the table and payload-pool work of the operation body:
	// store_to_untrusted / lookup / delete (Algorithm 2, line 7+).
	SrvApply
	// SrvVlogRead is the value-log read-through: fetching a record from
	// the untrusted on-disk log and re-authenticating its enclave-sealed
	// placement metadata, on gets whose value is not memory-resident.
	SrvVlogRead
	// SrvReplySeal is response-control encoding plus AEAD sealing.
	SrvReplySeal
	// SrvSend is the reply's untrusted-sender path: from enqueue on the
	// outgoing channel to the one-sided response-ring write returning
	// (includes response-ring credit wait).
	SrvSend
	// SrvTotal spans the whole server-side handling (recorded
	// automatically on Finish for server-side tracers).
	SrvTotal
	// CliBatch is client-side batch assembly: encoding N ops into one
	// control blob, sealing it, and building the single frame.
	CliBatch
	// SrvBatch is the server-side per-op apply loop of a batch frame:
	// everything between the one verify and the one reply seal.
	SrvBatch
	// NumStages is the number of defined stages.
	NumStages
)

// stageNames are the wire/export names, stable API for dashboards.
var stageNames = [NumStages]string{
	CliEncrypt:    "cli_encrypt",
	CliSeal:       "cli_seal",
	CliCreditWait: "cli_credit_wait",
	CliRingWrite:  "cli_ring_write",
	CliRespWait:   "cli_resp_wait",
	CliVerify:     "cli_verify",
	CliBackoff:    "cli_backoff",
	CliAttempt:    "cli_attempt",
	CliReplica:    "cli_replica",
	CliTotal:      "cli_total",
	SrvPickup:     "srv_pickup",
	SrvDecode:     "srv_decode",
	SrvVerify:     "srv_verify",
	SrvApply:      "srv_apply",
	SrvVlogRead:   "srv_vlog_read",
	SrvReplySeal:  "srv_reply_seal",
	SrvSend:       "srv_send",
	SrvTotal:      "srv_total",
	CliBatch:      "cli_batch",
	SrvBatch:      "srv_batch",
}

// String returns the stage's export name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage?"
}

// Side tells a Tracer which half of the pipeline it instruments (it
// determines the automatic total stage and labels exports).
type Side uint8

// Tracer sides.
const (
	// SideServer tracers record srv_* stages.
	SideServer Side = iota
	// SideClient tracers record cli_* stages.
	SideClient
)

// String returns "server" or "client".
func (s Side) String() string {
	if s == SideClient {
		return "client"
	}
	return "server"
}

// totalStage is the side's automatic whole-operation stage.
func (s Side) totalStage() Stage {
	if s == SideClient {
		return CliTotal
	}
	return SrvTotal
}

// timeBase anchors the package's monotonic clock. All span timestamps
// are nanoseconds since process start: reading the monotonic clock
// alone (time.Since) costs about half a full time.Now(), and the hot
// path reads it per stage boundary.
var timeBase = time.Now()

// Now returns the current time on the tracer's monotonic timebase, in
// nanoseconds since process start. Callers holding only a *Tracer (not
// an *Op) use it to stamp span starts before an Op exists.
func Now() int64 { return int64(time.Since(timeBase)) }

// TimeBaseUnixNano returns the wall-clock instant (Unix nanoseconds) the
// monotonic timebase is anchored at, so a collector can place this
// process's span timestamps (Now-relative) on a shared absolute axis
// when stitching traces from several processes.
func TimeBaseUnixNano() int64 { return timeBase.UnixNano() }

// randID returns a uniformly random nonzero 64-bit identifier. Trace
// and span ids are random (not sequential) so ids minted by different
// processes collide only with ~2^-64 probability — the property
// cross-node trace stitching rests on. Zero is reserved for "absent".
func randID() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// SpanRef is a portable reference to an in-flight span: enough for a
// callee (another goroutine, another process via the wire trace
// context) to record its own work as a child of the referenced span.
// The zero SpanRef means "no trace"; methods accepting one treat it as
// a no-op, so untraced paths need no branches.
type SpanRef struct {
	// TraceID is the end-to-end trace the span belongs to.
	TraceID uint64
	// SpanID is the span itself — the parent of whatever adopts the ref.
	SpanID uint64
	// Sampled carries the origin's head-sampling decision so every node
	// on the trace's path retains or discards it coherently.
	Sampled bool
}

// Valid reports whether the ref actually references a trace.
func (r SpanRef) Valid() bool { return r.TraceID != 0 }

// Span is one timed stage within a trace.
type Span struct {
	// Stage names the pipeline segment.
	Stage Stage
	// Attempt is the 1-based read-retry attempt number for CliAttempt
	// (and the stages recorded inside it); 0 when not applicable.
	Attempt uint8
	// Replica names the replica-group member a CliReplica span timed
	// (empty for every other stage). Together with Trace.Group it lets
	// /debug/traces show a replicated write's fan-out.
	Replica string
	// Start is the span's start time on the monotonic timebase (Now).
	Start int64
	// Dur is the span's duration in nanoseconds.
	Dur int64
}

// maxSpans bounds the spans kept per operation. A worst-case retried
// read records ~5 spans per attempt; beyond the bound further spans are
// still counted into histograms but dropped from the stored trace.
const maxSpans = 24

// maxFaultNotes bounds the fault annotations stored per trace and the
// tracer's fault-note ring.
const maxFaultNotes = 64

// Trace is one finished operation's record: identity, outcome, and the
// stage spans both for inspection (Recent, /debug/traces) and the
// slow-op log.
type Trace struct {
	// ID is the trace identifier: random, nonzero, and — when the
	// operation adopted a propagated trace context — shared with every
	// other process that worked on the same end-to-end operation.
	ID uint64
	// Span is this operation's own span id within the trace, the parent
	// of any child spans recorded downstream.
	Span uint64
	// Parent is the upstream span this operation is a child of (0 for a
	// trace root).
	Parent uint64
	// Sampled records the head-sampling bit the retention decision used
	// (essential traces — errors, unconfirmed writes, faults, slow-over-
	// threshold — are retained even when it is false).
	Sampled bool
	// Kind is the operation kind ("put", "get", "delete", …).
	Kind string
	// Client is the server-assigned client id, when known.
	Client uint32
	// Oid is the operation id (of the last attempt, for retried reads).
	Oid uint64
	// Start and End bound the operation on the monotonic timebase (Now).
	Start, End int64
	// Err is the operation's error string, empty on success.
	Err string
	// Unconfirmed marks a non-idempotent write whose outcome is unknown
	// (the ErrUnconfirmed join).
	Unconfirmed bool
	// Group names the replica group a replicated cluster operation
	// targeted (empty for unreplicated operations).
	Group string
	// Spans are the recorded stages, in recording order. The side's
	// total stage is always last.
	Spans []Span
	// Faults lists faultfab injections whose record time fell inside
	// [Start, End] — the annotation that lets a chaos run explain its
	// own latency tail. Empty outside chaos runs.
	Faults []string
}

// Dur returns the trace's total duration.
func (t *Trace) Dur() time.Duration { return time.Duration(t.End - t.Start) }

// Config parameterizes New.
type Config struct {
	// Side selects client or server stage bookkeeping.
	Side Side
	// Workers sizes the per-stage histogram sharding (hist.DefaultShards
	// if <= 0); pass the number of threads that will record.
	Workers int
	// Ring bounds the recent-trace ring (default 256).
	Ring int
	// SlowThreshold, when > 0, logs the full stage breakdown of every
	// operation at least this slow.
	SlowThreshold time.Duration
	// Logger receives slow-op reports (slog.Default() if nil).
	Logger *slog.Logger
	// SlowLogBurst is the token-bucket burst for slow-op log lines
	// (default 10): a latency storm gets at most this many consecutive
	// lines before the steady-state rate applies.
	SlowLogBurst int
	// SlowLogEvery is the steady-state interval between slow-op log
	// lines once the burst is spent (default 1s; negative disables
	// rate limiting entirely). Suppressed reports are counted — see
	// SlowSuppressed and precursor_slowop_suppressed_total.
	SlowLogEvery time.Duration
	// TailSample is the probability an *unremarkable* finished trace is
	// retained in the recent ring. Essential traces — errors, unconfirmed
	// writes, fault-annotated operations, and anything at or over
	// SlowThreshold — are always retained (tail-based sampling): the ring
	// keeps 100% of what an operator would grep for, and TailSample only
	// thins the healthy background. 0 means 1.0 (retain everything, the
	// pre-tail-sampling behavior every existing caller gets); negative
	// retains no unremarkable traces at all. Stage histograms and
	// exemplars always record regardless of retention. An operation that
	// adopted a propagated trace context inherits the origin's sampling
	// decision instead of rolling its own, so a trace is kept or dropped
	// coherently on every node it touched.
	TailSample float64
}

// Tracer aggregates operation traces for one side of the pipeline. All
// methods are safe for concurrent use; a nil *Tracer is inert (Start
// returns a nil *Op whose methods no-op).
type Tracer struct {
	side  Side
	hists [NumStages]*hist.Sharded

	// ring is the recent-trace ring behind a pointer so SetRing can
	// swap in a new bound without stalling concurrent publishes.
	ring    atomic.Pointer[traceRing]
	ringIdx atomic.Uint64

	pool sync.Pool

	// sampleCut implements TailSample: an unremarkable trace is head-
	// sampled iff its random trace id is <= sampleCut (math.MaxUint64 =
	// keep all, 0 = keep none). Deriving the decision from the id keeps
	// Start allocation- and float-free.
	sampleCut uint64
	// retained / discarded count Finish's tail-sampling outcomes.
	retained, discarded atomic.Uint64

	// exemplars holds, per stage, the slowest span since the last
	// TakeExemplar — the trace-id link exported next to the stage's
	// latency quantiles on /metrics.
	exemplars [NumStages]atomic.Pointer[exemplar]

	slow   atomic.Int64
	logger *slog.Logger

	// Slow-op log token bucket: a latency storm must not flood stderr.
	// slowMu guards the bucket; suppressed is the cumulative drop
	// counter (atomic so the metrics scrape never takes the mutex).
	slowMu        sync.Mutex
	slowTokens    float64
	slowLast      int64   // timebase ns of the last refill
	slowBurst     float64 // bucket capacity
	slowEveryNs   float64 // ns per replenished token (<= 0: unlimited)
	slowSuppDelta uint64  // drops since the last emitted line
	suppressed    atomic.Uint64

	faults   [maxFaultNotes]atomic.Pointer[faultNote]
	faultIdx atomic.Uint64
	faultN   atomic.Uint64
}

// faultNote is one recorded fault-injection annotation.
type faultNote struct {
	ts   int64
	desc string
}

// traceRing is one immutable-capacity recent-trace ring generation.
type traceRing struct {
	slots []atomic.Pointer[Trace]
}

// exemplar links a stage's latency to the trace that exhibited it.
type exemplar struct {
	traceID uint64
	dur     int64
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	ringSize := cfg.Ring
	if ringSize <= 0 {
		ringSize = 256
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	t := &Tracer{
		side:   cfg.Side,
		logger: logger,
	}
	t.ring.Store(&traceRing{slots: make([]atomic.Pointer[Trace], ringSize)})
	switch {
	case cfg.TailSample < 0:
		t.sampleCut = 0
	case cfg.TailSample == 0 || cfg.TailSample >= 1:
		t.sampleCut = math.MaxUint64
	default:
		t.sampleCut = uint64(cfg.TailSample * float64(math.MaxUint64))
	}
	t.slow.Store(int64(cfg.SlowThreshold))
	burst := cfg.SlowLogBurst
	if burst <= 0 {
		burst = 10
	}
	every := cfg.SlowLogEvery
	if every == 0 {
		every = time.Second
	}
	t.slowBurst = float64(burst)
	t.slowTokens = t.slowBurst
	t.slowEveryNs = float64(every.Nanoseconds()) // negative: unlimited
	t.slowLast = Now()
	for s := Stage(0); s < NumStages; s++ {
		t.hists[s] = hist.NewSharded(cfg.Workers)
	}
	t.pool.New = func() any { return new(Op) }
	return t
}

// Side returns which pipeline half this tracer instruments.
func (t *Tracer) Side() Side { return t.side }

// SetSlowThreshold changes the slow-op log threshold (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slow.Store(int64(d))
}

// Start begins recording one operation handled by the given worker
// (worker indexes the histogram shards; any non-negative value works).
// A nil tracer returns a nil *Op, whose methods all no-op.
func (t *Tracer) Start(worker int, kind string) *Op {
	return t.StartAt(worker, kind, Now())
}

// StartAt is Start with an explicit operation start time, for callers
// that timestamped the pickup before deciding to trace (the server's
// poll loop).
func (t *Tracer) StartAt(worker int, kind string, startNanos int64) *Op {
	if t == nil {
		return nil
	}
	op := t.pool.Get().(*Op)
	op.tr = t
	op.worker = worker
	op.kind = kind
	op.start = startNanos
	op.id = randID()
	op.span = randID()
	// Head-sample off the random trace id: cheap, and every tracer with
	// the same TailSample makes the same call for the same trace.
	op.sampled = op.id <= t.sampleCut
	return op
}

// NoteFault records a fault-injection annotation (from faultfab's
// OnFault hook): traces finished while the note's timestamp falls in
// their window pick it up. Safe from any goroutine; nil-tracer no-op.
func (t *Tracer) NoteFault(desc string) {
	if t == nil {
		return
	}
	i := t.faultIdx.Add(1) - 1
	t.faults[i%maxFaultNotes].Store(&faultNote{ts: Now(), desc: desc})
	t.faultN.Add(1)
}

// faultsBetween collects fault notes recorded within [from, to].
func (t *Tracer) faultsBetween(from, to int64) []string {
	var out []string
	for i := range t.faults {
		n := t.faults[i].Load()
		if n != nil && n.ts >= from && n.ts <= to {
			out = append(out, n.desc)
			if len(out) >= 8 {
				break
			}
		}
	}
	return out
}

// push publishes a finished trace into the lock-free recent ring.
func (t *Tracer) push(tr *Trace) {
	r := t.ring.Load()
	i := t.ringIdx.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// SetRing rebounds the recent-trace ring to n slots (values <= 0 keep
// the current bound). The swap is lock-free; traces retained under the
// old bound are dropped, which is acceptable for a startup-time knob.
// Nil-tracer no-op.
func (t *Tracer) SetRing(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.ring.Store(&traceRing{slots: make([]atomic.Pointer[Trace], n)})
}

// RingSize returns the current recent-trace ring bound. Nil-safe.
func (t *Tracer) RingSize() int {
	if t == nil {
		return 0
	}
	return len(t.ring.Load().slots)
}

// Recent returns the retained recent traces, oldest first.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	r := t.ring.Load()
	out := make([]Trace, 0, len(r.slots))
	// Walk the ring from the oldest retained slot forward so the result
	// is (approximately, under concurrent pushes) in finish order.
	next := t.ringIdx.Load()
	for k := uint64(0); k < uint64(len(r.slots)); k++ {
		p := r.slots[(next+k)%uint64(len(r.slots))].Load()
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Retained returns how many finished traces tail sampling published to
// the recent ring. Nil-safe.
func (t *Tracer) Retained() uint64 {
	if t == nil {
		return 0
	}
	return t.retained.Load()
}

// Discarded returns how many finished traces tail sampling dropped
// (unremarkable and not head-sampled). Their spans were still recorded
// into the stage histograms. Nil-safe.
func (t *Tracer) Discarded() uint64 {
	if t == nil {
		return 0
	}
	return t.discarded.Load()
}

// noteExemplar keeps the slowest span per stage since the last
// TakeExemplar. Load-compare-store (not CAS): a lost race forgets one
// candidate, which exemplars tolerate.
func (t *Tracer) noteExemplar(s Stage, traceID uint64, dur int64) {
	cur := t.exemplars[s].Load()
	if cur == nil || dur >= cur.dur {
		t.exemplars[s].Store(&exemplar{traceID: traceID, dur: dur})
	}
}

// TakeExemplar returns and clears the stage's exemplar: the trace id of
// the slowest span recorded for the stage since the previous call, so
// each /metrics scrape links the stage's quantiles to a concrete recent
// trace. ok is false when the stage recorded nothing since. Nil-safe.
func (t *Tracer) TakeExemplar(s Stage) (traceID uint64, dur time.Duration, ok bool) {
	if t == nil || s >= NumStages {
		return 0, 0, false
	}
	e := t.exemplars[s].Swap(nil)
	if e == nil {
		return 0, 0, false
	}
	return e.traceID, time.Duration(e.dur), true
}

// StageQuantiles is one stage's latency summary, as exported on
// /metrics and Client.StatsStruct.
type StageQuantiles struct {
	// Stage names the pipeline segment.
	Stage Stage
	// Quantiles is the stage's latency distribution snapshot.
	Quantiles hist.Quantiles
}

// Snapshot returns a quantile summary for every stage that has recorded
// at least one sample, in pipeline order. Nil-tracer returns nil.
func (t *Tracer) Snapshot() []StageQuantiles {
	if t == nil {
		return nil
	}
	var out []StageQuantiles
	for s := Stage(0); s < NumStages; s++ {
		if t.hists[s].Count() == 0 {
			continue
		}
		out = append(out, StageQuantiles{Stage: s, Quantiles: t.hists[s].Snapshot().Quantiles()})
	}
	return out
}

// slowAdmit consults the slow-op token bucket: it returns whether this
// report may be logged and, when it may, how many reports were
// suppressed since the last emitted line (so the log still conveys
// storm magnitude without a line per op).
func (t *Tracer) slowAdmit() (suppressedSince uint64, ok bool) {
	if t.slowEveryNs <= 0 {
		return 0, true
	}
	now := Now()
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	t.slowTokens += float64(now-t.slowLast) / t.slowEveryNs
	t.slowLast = now
	if t.slowTokens > t.slowBurst {
		t.slowTokens = t.slowBurst
	}
	if t.slowTokens < 1 {
		t.slowSuppDelta++
		t.suppressed.Add(1)
		return 0, false
	}
	t.slowTokens--
	since := t.slowSuppDelta
	t.slowSuppDelta = 0
	return since, true
}

// SlowSuppressed returns the cumulative count of slow-op reports the
// rate limiter dropped (precursor_slowop_suppressed_total). Nil-safe.
func (t *Tracer) SlowSuppressed() uint64 {
	if t == nil {
		return 0
	}
	return t.suppressed.Load()
}

// logSlow emits the slow-op report: one line with the breakdown, never
// any key or payload material.
func (t *Tracer) logSlow(tr *Trace) {
	suppressedSince, ok := t.slowAdmit()
	if !ok {
		return
	}
	attrs := []any{
		slog.String("kind", tr.Kind),
		slog.Uint64("trace", tr.ID),
		slog.Uint64("oid", tr.Oid),
		slog.Int("client", int(tr.Client)),
		slog.Duration("total", tr.Dur()),
		slog.String("stages", formatSpans(tr.Spans)),
	}
	if tr.Err != "" {
		attrs = append(attrs, slog.String("err", tr.Err))
	}
	if tr.Unconfirmed {
		attrs = append(attrs, slog.Bool("unconfirmed", true))
	}
	if len(tr.Faults) > 0 {
		attrs = append(attrs, slog.Any("faults", tr.Faults))
	}
	if suppressedSince > 0 {
		attrs = append(attrs, slog.Uint64("suppressed_since_last", suppressedSince))
	}
	t.logger.Warn("slow operation", attrs...)
}

// Op is one in-flight operation's recording handle. All methods are
// nil-receiver safe — the disabled-tracer hot path is a single branch.
// An Op is owned by one goroutine at a time (ownership transfers with
// the operation, e.g. trusted thread → sender loop on the server).
type Op struct {
	tr      *Tracer
	worker  int
	id      uint64 // trace id (adopted from a SpanRef, or minted fresh)
	span    uint64 // this operation's own span id
	parent  uint64 // upstream span id (0 = trace root)
	sampled bool   // head-sampling decision, local or inherited
	kind    string
	client  uint32
	oid     uint64
	start   int64
	err     string
	group   string
	unconf  bool

	nspans  int
	dropped bool
	spans   [maxSpans]Span
}

// Now returns the current time on the monotonic timebase, or 0 on a
// nil Op so disabled-tracer paths skip the clock read entirely.
func (o *Op) Now() int64 {
	if o == nil {
		return 0
	}
	return Now()
}

// SetKind overrides the operation kind (the server learns it only after
// decoding the control data).
func (o *Op) SetKind(kind string) {
	if o != nil {
		o.kind = kind
	}
}

// SetClient records the server-assigned client id.
func (o *Op) SetClient(id uint32) {
	if o != nil {
		o.client = id
	}
}

// SetOid records the operation id (call per attempt; the last wins).
func (o *Op) SetOid(oid uint64) {
	if o != nil {
		o.oid = oid
	}
}

// SetGroup records the replica group the operation targeted.
func (o *Op) SetGroup(group string) {
	if o != nil {
		o.group = group
	}
}

// Ref returns a portable reference to this operation's span, for
// propagation to children — downstream goroutines, or a peer process
// via the wire trace context. Returns the zero SpanRef on a nil Op, so
// untraced paths propagate "no context" for free.
func (o *Op) Ref() SpanRef {
	if o == nil {
		return SpanRef{}
	}
	return SpanRef{TraceID: o.id, SpanID: o.span, Sampled: o.sampled}
}

// AdoptRef stitches this operation into the referenced trace: the op
// takes the ref's trace id, becomes a child of the ref's span, and
// inherits the origin's sampling decision (so the whole distributed
// trace is retained or thinned coherently). The op keeps its own span
// id. No-op on a nil Op or an invalid ref.
func (o *Op) AdoptRef(r SpanRef) {
	if o == nil || !r.Valid() {
		return
	}
	o.id = r.TraceID
	o.parent = r.SpanID
	o.sampled = r.Sampled
}

// TraceID returns the operation's current trace id (0 on nil). Useful
// for tests and log correlation; the hot path never needs it.
func (o *Op) TraceID() uint64 {
	if o == nil {
		return 0
	}
	return o.id
}

// ReplicaSpanAt records one replica's share of a replicated operation
// with explicit bounds — a CliReplica child span named after the
// member. Like every Op method it must be called by the Op's owning
// goroutine; a replicated write's fan-out funnels its per-replica
// timings to one collector that records them all.
func (o *Op) ReplicaSpanAt(replica string, start, end int64) {
	if o == nil {
		return
	}
	o.add(Span{Stage: CliReplica, Replica: replica, Start: start, Dur: end - start})
}

// SetError records the operation's final error.
func (o *Op) SetError(err error) {
	if o != nil && err != nil {
		o.err = err.Error()
	}
}

// MarkUnconfirmed flags the trace as an unknown-outcome write.
func (o *Op) MarkUnconfirmed() {
	if o != nil {
		o.unconf = true
	}
}

// Span records a stage from start (a value from Now) to the current
// time.
func (o *Op) Span(stage Stage, start int64) {
	if o == nil {
		return
	}
	o.SpanAt(stage, start, Now())
}

// SpanEnd records a stage from start to now and returns the end
// timestamp, so back-to-back stages can share one clock read (the
// previous stage's end is the next one's start). Returns 0 on nil.
func (o *Op) SpanEnd(stage Stage, start int64) int64 {
	if o == nil {
		return 0
	}
	end := Now()
	o.add(Span{Stage: stage, Start: start, Dur: end - start})
	return end
}

// SpanAt records a stage with explicit bounds.
func (o *Op) SpanAt(stage Stage, start, end int64) {
	if o == nil {
		return
	}
	o.add(Span{Stage: stage, Start: start, Dur: end - start})
}

// AttemptSpan records one CliAttempt span with its 1-based attempt
// number.
func (o *Op) AttemptSpan(attempt int, start int64) {
	if o == nil {
		return
	}
	a := attempt
	if a > 255 {
		a = 255
	}
	o.add(Span{Stage: CliAttempt, Attempt: uint8(a), Start: start, Dur: Now() - start})
}

// add appends a span, dropping (but still histogramming, via Finish's
// loop over stored spans — dropped spans are recorded immediately
// instead) past the bound.
func (o *Op) add(sp Span) {
	if o.nspans >= maxSpans {
		// Histogram the overflow sample now; it just won't appear in the
		// stored trace.
		o.dropped = true
		o.tr.hists[sp.Stage].Record(o.worker, time.Duration(sp.Dur))
		return
	}
	o.spans[o.nspans] = sp
	o.nspans++
}

// Finish completes the operation: appends the side's total stage and
// feeds every span into the stage histograms and exemplar slots
// (always), then makes the tail-sampling retention call — essential
// traces (error, unconfirmed, fault-annotated, slow-over-threshold)
// always publish to the recent ring, unremarkable ones only when
// head-sampled — emits the slow-op log if over threshold, and recycles
// the Op. The Op must not be used afterwards.
func (o *Op) Finish() {
	if o == nil {
		return
	}
	t := o.tr
	end := Now()
	o.add(Span{Stage: t.side.totalStage(), Start: o.start, Dur: end - o.start})
	for i := 0; i < o.nspans; i++ {
		sp := &o.spans[i]
		t.hists[sp.Stage].Record(o.worker, time.Duration(sp.Dur))
		t.noteExemplar(sp.Stage, o.id, sp.Dur)
	}
	th := t.slow.Load()
	essential := o.err != "" || o.unconf || (th > 0 && end-o.start >= th)
	var faults []string
	if t.faultN.Load() > 0 {
		faults = t.faultsBetween(o.start, end)
		if len(faults) > 0 {
			essential = true
		}
	}
	if !essential && !o.sampled {
		t.discarded.Add(1)
		*o = Op{}
		t.pool.Put(o)
		return
	}
	t.retained.Add(1)
	// One allocation publishes the trace: the box co-locates the Trace
	// header with its span storage, and is immutable once pushed.
	box := &traceBox{}
	copy(box.spans[:], o.spans[:o.nspans])
	box.trace = Trace{
		ID:          o.id,
		Span:        o.span,
		Parent:      o.parent,
		Sampled:     o.sampled,
		Kind:        o.kind,
		Client:      o.client,
		Oid:         o.oid,
		Start:       o.start,
		End:         end,
		Err:         o.err,
		Unconfirmed: o.unconf,
		Group:       o.group,
		Spans:       box.spans[:o.nspans],
		Faults:      faults,
	}
	t.push(&box.trace)
	if th > 0 && end-o.start >= th {
		t.logSlow(&box.trace)
	}
	*o = Op{}
	t.pool.Put(o)
}

// traceBox is Finish's single allocation: Trace.Spans points into the
// inline array, so one object carries the whole published record.
type traceBox struct {
	trace Trace
	spans [maxSpans]Span
}
