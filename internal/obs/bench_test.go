package obs

import "testing"

// BenchmarkOpLifecycle measures the full per-op tracing cost: pool get,
// six spans, finish with histogram recording and ring push.
func BenchmarkOpLifecycle(b *testing.B) {
	tr := New(Config{Side: SideServer, Workers: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := tr.StartAt(0, "put", Now())
		t0 := op.Now()
		op.Span(SrvPickup, t0)
		t1 := op.Now()
		op.Span(SrvDecode, t1)
		t2 := op.Now()
		op.Span(SrvVerify, t2)
		t3 := op.Now()
		op.Span(SrvApply, t3)
		t4 := op.Now()
		op.Span(SrvReplySeal, t4)
		op.SetOid(uint64(i))
		op.Finish()
	}
}

// BenchmarkNowBaseline is the cost of one clock read, for scale.
func BenchmarkNowBaseline(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = Now()
	}
	_ = sink
}
