package obs

import (
	"errors"
	"testing"
	"time"
)

// TestTailSamplingKeepsEssential checks the tail-sampling contract: with
// a retain-nothing probability, unremarkable traces are discarded while
// errors, unconfirmed writes, fault-annotated and slow operations are
// all retained.
func TestTailSamplingKeepsEssential(t *testing.T) {
	tr := New(Config{
		Side: SideServer, Ring: 16,
		TailSample:    -1,
		SlowThreshold: 10 * time.Millisecond,
		SlowLogEvery:  -1,
	})

	// Unremarkable: fast, clean — must be discarded.
	for i := 0; i < 5; i++ {
		op := tr.Start(0, "get")
		op.Finish()
	}
	if got := len(tr.Recent()); got != 0 {
		t.Fatalf("retained %d unremarkable traces, want 0", got)
	}
	if tr.Discarded() != 5 || tr.Retained() != 0 {
		t.Fatalf("retained=%d discarded=%d, want 0/5", tr.Retained(), tr.Discarded())
	}

	// Error op: retained.
	op := tr.Start(0, "get")
	op.SetOid(1)
	op.SetError(errors.New("boom"))
	op.Finish()

	// Unconfirmed write: retained.
	op = tr.Start(0, "put")
	op.SetOid(2)
	op.MarkUnconfirmed()
	op.Finish()

	// Fault-annotated: retained.
	op = tr.Start(0, "put")
	op.SetOid(3)
	tr.NoteFault("chaos: injected corrupt")
	op.Finish()

	// Slow: retained (backdated start, so Finish sees >= threshold).
	op = tr.StartAt(0, "get", Now()-int64(20*time.Millisecond))
	op.SetOid(4)
	op.Finish()

	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("retained %d essential traces, want 4: %+v", len(recent), recent)
	}
	if tr.Retained() != 4 {
		t.Fatalf("Retained() = %d, want 4", tr.Retained())
	}
	// Histograms recorded every op regardless of retention.
	for _, sq := range tr.Snapshot() {
		if sq.Stage == SrvTotal && sq.Quantiles.Count != 9 {
			t.Fatalf("srv_total histogram count = %d, want 9", sq.Quantiles.Count)
		}
	}
}

// TestTailSamplingZeroKeepsAll checks TailSample 0 (the zero value every
// pre-tail-sampling caller gets) retains everything.
func TestTailSamplingZeroKeepsAll(t *testing.T) {
	tr := New(Config{Side: SideClient, Ring: 16})
	for i := 0; i < 8; i++ {
		op := tr.Start(0, "get")
		op.Finish()
	}
	if got := len(tr.Recent()); got != 8 {
		t.Fatalf("retained %d, want 8", got)
	}
	if tr.Discarded() != 0 {
		t.Fatalf("Discarded() = %d, want 0", tr.Discarded())
	}
}

// TestAdoptRefInheritsSampling checks an op that adopted a propagated
// context keeps the origin's trace/parent ids and its sampling decision
// — even against a local retain-nothing probability.
func TestAdoptRefInheritsSampling(t *testing.T) {
	tr := New(Config{Side: SideServer, Ring: 8, TailSample: -1})

	op := tr.Start(0, "get")
	op.AdoptRef(SpanRef{TraceID: 77, SpanID: 33, Sampled: true})
	op.Finish()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("adopted sampled trace not retained (got %d)", len(recent))
	}
	got := recent[0]
	if got.ID != 77 || got.Parent != 33 || !got.Sampled {
		t.Fatalf("adopted identity wrong: %+v", got)
	}
	if got.Span == 0 || got.Span == 33 {
		t.Fatalf("own span id = %d, want fresh nonzero != parent", got.Span)
	}

	// Origin said "not sampled": an unremarkable adopted op is dropped.
	op = tr.Start(0, "get")
	op.AdoptRef(SpanRef{TraceID: 78, SpanID: 34, Sampled: false})
	op.Finish()
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("unsampled adopted trace retained (recent = %d)", got)
	}

	// Zero ref is a no-op: the op keeps its own identity.
	op = tr.Start(0, "put")
	op.AdoptRef(SpanRef{})
	ref := op.Ref()
	if !ref.Valid() || ref.TraceID == 77 {
		t.Fatalf("zero adopt corrupted identity: %+v", ref)
	}
	op.Finish()
}

// TestSetRingResizes checks the /debug/traces ring can be rebounded at
// runtime and keeps publishing into the new bound.
func TestSetRingResizes(t *testing.T) {
	tr := New(Config{Side: SideServer, Ring: 4})
	if tr.RingSize() != 4 {
		t.Fatalf("RingSize = %d, want 4", tr.RingSize())
	}
	tr.SetRing(2)
	if tr.RingSize() != 2 {
		t.Fatalf("RingSize after SetRing(2) = %d", tr.RingSize())
	}
	for i := 0; i < 6; i++ {
		op := tr.Start(0, "put")
		op.SetOid(uint64(i))
		op.Finish()
	}
	if got := len(tr.Recent()); got != 2 {
		t.Fatalf("recent = %d traces, want ring bound 2", got)
	}
	// Non-positive sizes keep the current ring.
	tr.SetRing(0)
	if tr.RingSize() != 2 {
		t.Fatalf("SetRing(0) changed the ring to %d", tr.RingSize())
	}
	// Nil tracer: inert.
	var nilTr *Tracer
	nilTr.SetRing(8)
	if nilTr.RingSize() != 0 {
		t.Fatal("nil tracer RingSize != 0")
	}
}

// TestTakeExemplar checks per-stage exemplars record the slowest recent
// op and reset on read (one exemplar per scrape).
func TestTakeExemplar(t *testing.T) {
	tr := New(Config{Side: SideServer, Ring: 4})

	if _, _, ok := tr.TakeExemplar(SrvTotal); ok {
		t.Fatal("exemplar present before any op")
	}

	fast := tr.StartAt(0, "get", Now()-int64(time.Millisecond))
	fast.Finish()
	slow := tr.StartAt(0, "get", Now()-int64(50*time.Millisecond))
	slowID := slow.TraceID()
	slow.Finish()

	id, dur, ok := tr.TakeExemplar(SrvTotal)
	if !ok || id != slowID {
		t.Fatalf("exemplar id = %x ok=%v, want slow op %x", id, ok, slowID)
	}
	if dur < 50*time.Millisecond {
		t.Fatalf("exemplar dur = %v, want >= 50ms", dur)
	}
	if _, _, ok := tr.TakeExemplar(SrvTotal); ok {
		t.Fatal("exemplar not reset by Take")
	}
	if _, _, ok := tr.TakeExemplar(NumStages); ok {
		t.Fatal("out-of-range stage returned an exemplar")
	}
}
