package precursor_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"precursor"
)

// TestFacadeInProcess exercises the public API end to end over the
// in-process fabric, exactly as the package docs' quickstart shows.
func TestFacadeInProcess(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	fabric := precursor.NewFabric()
	dev, err := fabric.NewDevice("server")
	if err != nil {
		t.Fatal(err)
	}
	server, err := precursor.NewServer(dev, precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	cdev, err := fabric.NewDevice("client")
	if err != nil {
		t.Fatal(err)
	}
	cq, sq := fabric.ConnectRC(cdev, dev)
	go func() { _, _ = server.HandleConnection(sq) }()

	client, err := precursor.Connect(precursor.ClientConfig{
		Conn: cq, Device: cdev,
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("greeting", []byte("hello enclave")); err != nil {
		t.Fatal(err)
	}
	v, err := client.Get("greeting")
	if err != nil || string(v) != "hello enclave" {
		t.Fatalf("Get: %q %v", v, err)
	}
	if _, err := client.Get("missing"); !errors.Is(err, precursor.ErrNotFound) {
		t.Errorf("got %v", err)
	}
}

// TestServeAndDial exercises the one-call TCP deployment path.
func TestServeAndDial(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
		Timeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	value := bytes.Repeat([]byte{1, 2, 3}, 100)
	if err := client.Put("k", value); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get("k")
	if err != nil || !bytes.Equal(got, value) {
		t.Fatalf("Get: %v", err)
	}

	// A second client sees the same data.
	client2, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	got, err = client2.Get("k")
	if err != nil || !bytes.Equal(got, value) {
		t.Fatalf("client2 Get: %v", err)
	}
	if st := svc.Server.Stats(); st.Clients != 2 {
		t.Errorf("clients = %d", st.Clients)
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := precursor.Dial("127.0.0.1:1", precursor.DialConfig{}); err == nil {
		t.Error("nil platform key accepted")
	}
}
