package precursor_test

import (
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"precursor"
	"precursor/internal/fleet"
)

// slowWire delays every client->server post on one replica's wire,
// modeling a replica behind a congested link. The delay is read per
// post, so a test can change a link's speed mid-run.
type slowWire struct {
	precursor.Conn
	d *atomic.Int64 // delay in nanoseconds
}

func (c *slowWire) stall() {
	if d := time.Duration(c.d.Load()); d > 0 {
		time.Sleep(d)
	}
}

func (c *slowWire) PostWrite(wrID uint64, rkey uint32, off uint64, data []byte, signaled bool) error {
	c.stall()
	return c.Conn.PostWrite(wrID, rkey, off, data, signaled)
}

func (c *slowWire) PostWriteImm(wrID uint64, rkey uint32, off uint64, data []byte, imm uint32, signaled bool) error {
	c.stall()
	return c.Conn.PostWriteImm(wrID, rkey, off, data, imm, signaled)
}

// hedgeWires returns a WrapConn that sets up a deterministic hedging
// scenario: the first dialed connection starts fast while every other
// connection carries a fixed delay, so after a few warm-up writes the
// first conn's replica has the lowest latency EWMA and is the read
// order's primary. Raising the returned control then stalls exactly
// that primary, which is what forces reads to hedge.
func hedgeWires(others time.Duration) (func(precursor.Conn) precursor.Conn, *atomic.Int64) {
	var seq atomic.Uint64
	primary := &atomic.Int64{}
	fixed := &atomic.Int64{}
	fixed.Store(int64(others))
	wrap := func(c precursor.Conn) precursor.Conn {
		if seq.Add(1) == 1 {
			return &slowWire{Conn: c, d: primary}
		}
		return &slowWire{Conn: c, d: fixed}
	}
	return wrap, primary
}

// TestTraceStitchAcceptance is the trace-correlation acceptance test:
// an R=3 replicated cluster runs a seeded workload with one replica
// behind a slow wire, so reads against the cold primary hedge. The
// fleet collector then scrapes the server-side and client-side metrics
// endpoints — two distinct processes' vantage points — and must stitch
// the hedged read into a SINGLE trace whose spans come from both, with
// the hedge annotated.
func TestTraceStitchAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("trace stitch acceptance test skipped in -short mode")
	}
	srvTr := precursor.NewTracer(precursor.TracerConfig{Side: precursor.SideServer, Ring: 512})
	cs, err := precursor.ServeReplicatedCluster(1, 3, precursor.ServerConfig{
		Workers:      1,
		PollInterval: 50 * time.Microsecond,
		Tracer:       srvTr,
		TraceRing:    512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)

	cliTr := precursor.NewTracer(precursor.TracerConfig{Side: precursor.SideClient, Ring: 512})
	clsTr := precursor.NewTracer(precursor.TracerConfig{Side: precursor.SideClient, Ring: 512})
	wrap, primaryDelay := hedgeWires(10 * time.Millisecond)
	cc, err := precursor.DialReplicatedCluster(cs.GroupSpecs(), precursor.ClusterConfig{
		ConnsPerShard: 1,
		Timeout:       10 * time.Second,
		HedgeReads:    true,
		HedgeMinDelay: time.Millisecond,
		Tracer:        cliTr,
		ClusterTracer: clsTr,
		WrapConn:      wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })

	// Seeded mixed workload: the puts warm the read-preference EWMAs
	// (the yet-fast primary wins the read order), then the primary's
	// wire degrades and reads must hedge to a secondary to answer.
	for i := 0; i < 6; i++ {
		if err := cc.Put(fmt.Sprintf("stitch%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	primaryDelay.Store(int64(40 * time.Millisecond))
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("stitch%02d", i)
		if v, err := cc.Get(key); err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q, %v", key, v, err)
		}
	}
	if st := cc.Stats(); st.HedgesLaunched == 0 {
		t.Fatalf("no hedge launched against the slow primary: %+v", st)
	}

	// Two metrics endpoints play the two processes of a real
	// deployment: the servers' (one shared tracer across the group) and
	// the client's (per-connection + cluster tracers).
	heatColl := precursor.NewHeatCollector(precursor.HeatConfig{})
	srvMS, err := precursor.ServeMetrics(cs.Groups[0][0].Server, "127.0.0.1:0",
		precursor.WithTracer("server", srvTr),
		precursor.WithHeat("server", heatColl))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srvMS.Close() })
	cliMS, err := precursor.ServeClusterMetrics(cc, "127.0.0.1:0",
		precursor.WithTracer("client", cliTr),
		precursor.WithTracer("cluster", clsTr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cliMS.Close() })

	// Debug endpoints declare their payload type explicitly.
	for _, path := range []string{"/debug/traces", "/debug/traces?raw=1", "/debug/heat"} {
		resp, err := http.Get("http://" + srvMS.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if !strings.Contains(ct, "application/json") {
			t.Errorf("%s Content-Type = %q, want application/json", path, ct)
		}
	}

	nodes, err := fleet.CollectTraces(nil, []fleet.Target{
		{Name: "srv", URL: "http://" + srvMS.Addr() + "/metrics"},
		{Name: "cli", URL: "http://" + cliMS.Addr() + "/metrics"},
	})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if len(nodes) != 2 {
		t.Fatalf("collected %d nodes, want 2", len(nodes))
	}
	stitched := fleet.Stitch(nodes)
	if len(stitched) == 0 {
		t.Fatal("no stitched traces")
	}

	// The hedged read must surface as ONE stitched trace whose spans
	// come from both processes, carrying the hedge annotation.
	var hedged *fleet.Stitched
	for i := range stitched {
		s := &stitched[i]
		if s.Kind != "get" {
			continue
		}
		byTarget := map[string]bool{}
		hasHedge := false
		for _, sp := range s.Spans {
			byTarget[sp.Target] = true
			for _, f := range sp.Trace.Faults {
				if strings.Contains(f, "hedge launched") {
					hasHedge = true
				}
			}
		}
		if hasHedge && s.Procs >= 2 && byTarget["srv"] && byTarget["cli"] {
			hedged = s
			break
		}
	}
	if hedged == nil {
		t.Fatalf("no stitched hedged get with spans from both processes:\n%s",
			fleet.FormatStitched(stitched, 10))
	}
	dups := 0
	for i := range stitched {
		if stitched[i].ID == hedged.ID {
			dups++
		}
	}
	if dups != 1 {
		t.Fatalf("trace %016x stitched into %d entries, want 1", hedged.ID, dups)
	}

	// The CLI renders this same structure; its formatter must show the
	// hedge and both vantage points.
	out := fleet.FormatStitched([]fleet.Stitched{*hedged}, 1)
	for _, want := range []string{"hedge launched", "srv/server", "cli/cluster"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, out)
		}
	}
}

// TestTraceTailSamplingRetention checks the tail-sampling acceptance
// invariants end to end: with a retain-essential-only policy, every
// injected error op and every slow (delayed-wire) op is retained, fast
// clean traffic is discarded, and the retained set respects the
// ClusterConfig.TraceRing bound.
func TestTraceTailSamplingRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("tail sampling retention test skipped in -short mode")
	}
	const (
		slowDelay = 25 * time.Millisecond
		slowTh    = 10 * time.Millisecond
		ring      = 32
		errOps    = 5
	)
	cs, err := precursor.ServeReplicatedCluster(1, 3, precursor.ServerConfig{
		Workers:      1,
		PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)

	mk := func() *precursor.Tracer {
		return precursor.NewTracer(precursor.TracerConfig{
			Side: precursor.SideClient, Ring: 64,
			TailSample:    -1, // retain essential only
			SlowThreshold: slowTh,
			Logger:        slog.New(slog.DiscardHandler), // slow ops are the point; don't spam
		})
	}
	cliTr, clsTr := mk(), mk()
	wrap, primaryDelay := hedgeWires(slowDelay / 2)
	cc, err := precursor.DialReplicatedCluster(cs.GroupSpecs(), precursor.ClusterConfig{
		ConnsPerShard: 1,
		Timeout:       10 * time.Second,
		HedgeReads:    true,
		HedgeMinDelay: time.Millisecond,
		Tracer:        cliTr,
		ClusterTracer: clsTr,
		TraceRing:     ring,
		WrapConn:      wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })
	if cliTr.RingSize() != ring || clsTr.RingSize() != ring {
		t.Fatalf("TraceRing knob not applied: rings %d/%d, want %d",
			cliTr.RingSize(), clsTr.RingSize(), ring)
	}

	// Mixed workload. The puts warm the EWMAs; then the primary's wire
	// degrades, so the injected error reads and the slow reads both run
	// against a stalled primary and hedge.
	for i := 0; i < 6; i++ {
		if err := cc.Put(fmt.Sprintf("tail%02d", i), []byte("v")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	primaryDelay.Store(int64(slowDelay))
	for i := 0; i < 3; i++ {
		if _, err := cc.Get(fmt.Sprintf("tail%02d", i)); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	for i := 0; i < errOps; i++ {
		if _, err := cc.Get(fmt.Sprintf("tail-missing%02d", i)); err == nil {
			t.Fatalf("get of missing key %d unexpectedly succeeded", i)
		}
	}
	if cc.Stats().HedgesLaunched == 0 {
		t.Fatal("no hedge launched; slow-op injection did not take")
	}
	// With the primary's wire healthy again, reads are fast, clean and
	// unremarkable — exactly the traffic the tail sampler must discard.
	primaryDelay.Store(0)
	for i := 0; i < 16; i++ {
		if _, err := cc.Get(fmt.Sprintf("tail%02d", i%6)); err != nil {
			t.Fatalf("warm get %d: %v", i, err)
		}
	}

	essential := func(tr precursor.Trace) bool {
		return tr.Err != "" || tr.Unconfirmed || len(tr.Faults) > 0 || tr.Dur() >= slowTh
	}
	// Cluster-level: 100% of injected error ops retained, nothing
	// unremarkable retained, sampling actually discarded traffic, and
	// the ring bound holds.
	recent := clsTr.Recent()
	if len(recent) > clsTr.RingSize() {
		t.Fatalf("retained %d cluster traces, ring bound %d", len(recent), clsTr.RingSize())
	}
	gotErrs, gotHedge := 0, false
	for _, tr := range recent {
		if !essential(tr) {
			t.Fatalf("unremarkable trace retained under tail sampling: %+v", tr)
		}
		if tr.Kind == "get" && strings.Contains(tr.Err, "not found") {
			gotErrs++
		}
		for _, f := range tr.Faults {
			if strings.Contains(f, "hedge launched") {
				gotHedge = true
			}
		}
	}
	if gotErrs != errOps {
		t.Fatalf("retained %d error traces, want all %d injected", gotErrs, errOps)
	}
	if !gotHedge {
		t.Fatal("no retained trace carries the hedge fault annotation")
	}
	if clsTr.Discarded() == 0 {
		t.Fatal("tail sampling discarded nothing — fast clean ops should be dropped")
	}

	// Connection-level: the slow wire's ops cross the threshold and are
	// retained; everything retained is essential.
	slowSeen := false
	for _, tr := range cliTr.Recent() {
		if !essential(tr) {
			t.Fatalf("unremarkable connection trace retained: %+v", tr)
		}
		if tr.Dur() >= slowTh {
			slowSeen = true
		}
	}
	if !slowSeen {
		t.Fatal("no slow connection-level op retained")
	}
	if got := len(cliTr.Recent()); got > cliTr.RingSize() {
		t.Fatalf("retained %d connection traces, ring bound %d", got, cliTr.RingSize())
	}
}
