package precursor_test

import (
	"fmt"
	"log"

	"precursor"
)

// Example demonstrates the minimal in-process deployment: attest the
// enclave, connect, and run operations.
func Example() {
	platform, err := precursor.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	fabric := precursor.NewFabric()
	dev, err := fabric.NewDevice("server")
	if err != nil {
		log.Fatal(err)
	}
	server, err := precursor.NewServer(dev, precursor.ServerConfig{
		Platform: platform, Workers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	cdev, err := fabric.NewDevice("client")
	if err != nil {
		log.Fatal(err)
	}
	cq, sq := fabric.ConnectRC(cdev, dev)
	go func() { _, _ = server.HandleConnection(sq) }()

	client, err := precursor.Connect(precursor.ClientConfig{
		Conn: cq, Device: cdev,
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: server.Measurement(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("greeting", []byte("hello enclave")); err != nil {
		log.Fatal(err)
	}
	v, err := client.Get("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: hello enclave
}

// ExampleServe shows the one-call TCP deployment used by
// cmd/precursor-server.
func ExampleServe() {
	platform, err := precursor.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.Put("k", []byte("over real TCP")); err != nil {
		log.Fatal(err)
	}
	v, err := client.Get("k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: over real TCP
}
