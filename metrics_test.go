package precursor_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"precursor"
)

func TestMetricsEndpoint(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 5; i++ {
		if err := client.Put("m", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Get("m"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"precursor_puts_total 5",
		"precursor_gets_total 1",
		"precursor_entries 1",
		"precursor_clients 1",
		"# TYPE precursor_enclave_epc_pages gauge",
		"precursor_enclave_crypto_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	health, err := http.Get("http://" + metrics.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", health.StatusCode)
	}
}
