package precursor_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"precursor"
)

func TestMetricsEndpoint(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 5; i++ {
		if err := client.Put("m", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Get("m"); err != nil {
		t.Fatal(err)
	}
	if results, err := client.Batch([]precursor.BatchOp{
		{Kind: precursor.BatchPut, Key: "mb", Value: []byte("v")},
		{Kind: precursor.BatchGet, Key: "m"},
	}); err != nil || results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("batch: %v %+v", err, results)
	}

	resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		// 5 single puts + 1 get, plus a 2-op batch (1 put + 1 get):
		// batched ops count in the per-kind totals too.
		"precursor_puts_total 6",
		"precursor_gets_total 2",
		"precursor_entries 2",
		"precursor_clients 1",
		"# TYPE precursor_enclave_epc_pages gauge",
		"precursor_enclave_crypto_bytes_total",
		"precursor_batches_total 1",
		"precursor_batched_ops_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	health, err := http.Get("http://" + metrics.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", health.StatusCode)
	}
}

// TestVlogMetricsEndpoint: with a value log attached, /metrics grows the
// precursor_vlog_* families and the seal-duration gauge.
func TestVlogMetricsEndpoint(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
		DataDir: t.TempDir(),
		Vlog:    precursor.VlogConfig{InlineMax: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	big := strings.Repeat("v", 512) // above InlineMax: spills to the log
	for i := 0; i < 4; i++ {
		if err := client.Put(fmt.Sprintf("vm%d", i), []byte(big)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Get("vm0"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Server.Seal(io.Discard); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"precursor_vlog_segments 1",
		"precursor_vlog_appended_records_total 4",
		"precursor_vlog_group_commits_total",
		"precursor_vlog_group_commit_batch_avg",
		"precursor_vlog_live_bytes",
		"precursor_vlog_read_throughs_total",
		"precursor_vlog_auth_failures_total 0",
		"precursor_vlog_gc_reclaimed_bytes_total 0",
		"precursor_seal_duration_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vlog metrics missing %q\n%s", want, text)
		}
	}
}

// TestMetricsServerDoubleClose: Close is idempotent, including from
// concurrent goroutines.
func TestMetricsServerDoubleClose(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = metrics.Close()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent Close %d: %v", i, err)
		}
	}
	if err := metrics.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
}

// TestClusterMetricsEndpoint: ring placement, per-shard counters and
// shard health are exported with shard labels, and a dead shard flips to
// up=0.
func TestClusterMetricsEndpoint(t *testing.T) {
	cs, err := precursor.ServeCluster(2, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cc, err := precursor.DialCluster(cs.Specs(), precursor.ClusterConfig{
		Timeout: 2 * time.Second, RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	for i := 0; i < 40; i++ {
		if err := cc.Put(fmt.Sprintf("mk%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	metrics, err := precursor.ServeClusterMetrics(cc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	fetch := func() string {
		t.Helper()
		resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := fetch()
	for _, want := range []string{
		"precursor_cluster_shards 2",
		"precursor_cluster_shard_up{shard=\"" + cs.Shards[0].Addr() + "\",group=\"" + cs.Shards[0].Addr() + "\"} 1",
		"precursor_cluster_shard_up{shard=\"" + cs.Shards[1].Addr() + "\",group=\"" + cs.Shards[1].Addr() + "\"} 1",
		"precursor_cluster_shard_ownership{shard=\"" + cs.Shards[0].Addr() + "\",group=\"" + cs.Shards[0].Addr() + "\"}",
		"precursor_cluster_shard_keys_estimate",
		"precursor_cluster_shard_puts_total",
		"precursor_cluster_shard_errors_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster metrics missing %q\n%s", want, text)
		}
	}

	// Kill shard 1 and trip its breaker; the endpoint reports it down.
	deadAddr := cs.Shards[1].Addr()
	cs.Shards[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var deadKey string
		for i := 0; ; i++ {
			k := fmt.Sprintf("dead%05d", i)
			if cc.ShardFor(k) == deadAddr {
				deadKey = k
				break
			}
		}
		if err := cc.Put(deadKey, []byte("x")); err != nil && len(cc.Degraded()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened for dead shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	text = fetch()
	if want := "precursor_cluster_shard_up{shard=\"" + deadAddr + "\",group=\"" + deadAddr + "\"} 0"; !strings.Contains(text, want) {
		t.Errorf("metrics missing %q after shard death\n%s", want, text)
	}
}

// TestHealthzReadiness: /healthz is a readiness probe — 200 while the
// server accepts traffic, 503 once it has shut down (and during
// bootstrap/restore, which Server.Ready gates the same way).
func TestHealthzReadiness(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 1, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	defer metrics.Close()

	status := func() int {
		t.Helper()
		resp, err := http.Get("http://" + metrics.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(); got != http.StatusOK {
		t.Fatalf("healthz on live server = %d, want 200", got)
	}
	svc.Close()
	if got := status(); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz on closed server = %d, want 503", got)
	}
}

// TestClusterHealthzAllShardsDown: a cluster metrics endpoint stays
// ready while any shard serves, and flips to 503 only when every
// shard's breaker is open.
func TestClusterHealthzAllShardsDown(t *testing.T) {
	cs, err := precursor.ServeCluster(2, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cc, err := precursor.DialCluster(cs.Specs(), precursor.ClusterConfig{
		Timeout: time.Second, RetryBackoff: time.Minute, MaxBackoff: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	metrics, err := precursor.ServeClusterMetrics(cc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	status := func() int {
		t.Helper()
		resp, err := http.Get("http://" + metrics.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(); got != http.StatusOK {
		t.Fatalf("healthz with all shards up = %d, want 200", got)
	}

	// Kill every shard and trip every breaker.
	for _, svc := range cs.Shards {
		svc.Close()
	}
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; len(cc.Degraded()) < 2; i++ {
		_ = cc.Put(fmt.Sprintf("hz%05d", i), []byte("x"))
		if time.Now().After(deadline) {
			t.Fatalf("breakers never opened for both shards: degraded=%v", cc.Degraded())
		}
	}
	if got := status(); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz with all shards down = %d, want 503", got)
	}
}

// validatePromText checks the Prometheus text-format contract: every
// sample belongs to a family that carries exactly one HELP and one TYPE
// line, values parse as floats, and only _sum/_count suffixes may ride
// on a summary family.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	help := map[string]int{}
	typ := map[string]string{}
	var samples []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("HELP line without help text: %q", line)
				continue
			}
			help[f[2]]++
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if _, dup := typ[f[2]]; dup {
				t.Errorf("duplicate TYPE for family %s", f[2])
			}
			typ[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			// comment: legal
		default:
			samples = append(samples, line)
		}
	}
	for fam, n := range help {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines, want exactly 1", fam, n)
		}
		if _, ok := typ[fam]; !ok {
			t.Errorf("family %s has HELP but no TYPE", fam)
		}
	}
	for fam := range typ {
		if help[fam] == 0 {
			t.Errorf("family %s has TYPE but no HELP", fam)
		}
	}
	for _, s := range samples {
		name := s
		if i := strings.IndexAny(s, "{ "); i >= 0 {
			name = s[:i]
		}
		fam, suffixed := name, false
		if _, ok := typ[fam]; !ok {
			for _, suf := range []string{"_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name {
					if typ[base] == "summary" {
						fam, suffixed = base, true
					}
				}
			}
		}
		tt, ok := typ[fam]
		if !ok {
			t.Errorf("sample %q belongs to no HELP/TYPE family", s)
			continue
		}
		if suffixed && tt != "summary" {
			t.Errorf("sample %q uses a summary suffix on %s family %s", s, tt, fam)
		}
		if strings.Contains(s, "quantile=") && tt != "summary" {
			t.Errorf("sample %q carries a quantile label on %s family %s", s, tt, fam)
		}
		val := s[strings.LastIndexByte(s, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Errorf("sample %q value %q does not parse: %v", s, val, err)
		}
	}
}

// TestMetricsPromTextRoundTrip: the full exposition — server counters,
// cluster series and tracer summaries on one endpoint — survives a
// strict text-format parse.
func TestMetricsPromTextRoundTrip(t *testing.T) {
	cs, err := precursor.ServeCluster(2, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	ctrace := precursor.NewTracer(precursor.TracerConfig{Side: precursor.SideClient, Workers: 4})
	cc, err := precursor.DialCluster(cs.Specs(), precursor.ClusterConfig{
		Timeout: 2 * time.Second, Tracer: ctrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	for i := 0; i < 20; i++ {
		if err := cc.Put(fmt.Sprintf("rt%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Get(fmt.Sprintf("rt%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	metrics, err := precursor.ServeMetrics(cs.Shards[0].Server, "127.0.0.1:0",
		precursor.WithTracer("client", ctrace))
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()
	metrics.TrackCluster(cc)

	resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE precursor_stage_latency_seconds summary",
		`side="client"`,
		`stage="cli_total"`,
		"# TYPE precursor_cluster_shard_latency_seconds summary",
		"precursor_stage_latency_seconds_count",
		"precursor_cluster_shard_latency_seconds_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("round-trip exposition missing %q", want)
		}
	}
	validatePromText(t, text)
}

// TestDebugTraces: /debug/traces returns valid Chrome trace_event JSON
// whose per-op pipeline stages (>=6 named server stages) are exactly
// the stages exported as latency summaries on /metrics.
func TestDebugTraces(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	tracer := precursor.NewTracer(precursor.TracerConfig{Side: precursor.SideServer, Workers: 2})
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0",
		precursor.WithTracer("server", tracer))
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Put("trace-me", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("trace-me"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + metrics.Addr() + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("traces Content-Type = %q", ct)
	}
	var payload struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("traces is not valid Chrome trace JSON: %v\n%s", err, body)
	}
	stages := map[string]bool{}
	byTid := map[uint64]map[string]bool{}
	for _, ev := range payload.TraceEvents {
		if ev.Ph != "X" || !strings.HasPrefix(ev.Name, "srv_") {
			continue
		}
		stages[ev.Name] = true
		if byTid[ev.Tid] == nil {
			byTid[ev.Tid] = map[string]bool{}
		}
		byTid[ev.Tid][ev.Name] = true
		if ev.Dur <= 0 {
			t.Errorf("span %s has non-positive dur %v", ev.Name, ev.Dur)
		}
	}
	if len(stages) < 6 {
		t.Fatalf("want >=6 named server pipeline stages across traces, got %v", stages)
	}
	// At least one single operation (one tid) shows >=6 stages end-to-end.
	var best int
	for _, set := range byTid {
		if len(set) > best {
			best = len(set)
		}
	}
	if best < 6 {
		t.Errorf("no single op trace carries >=6 stages (best %d): %v", best, byTid)
	}

	// The same stage names must be exported as summaries on /metrics.
	mresp, err := http.Get("http://" + metrics.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	mtext := string(mbody)
	for stage := range stages {
		if want := `stage="` + stage + `"`; !strings.Contains(mtext, want) {
			t.Errorf("/metrics missing summary series for traced stage %s", stage)
		}
	}
	validatePromText(t, mtext)
}
