package precursor_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"precursor"
)

func TestMetricsEndpoint(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 5; i++ {
		if err := client.Put("m", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Get("m"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"precursor_puts_total 5",
		"precursor_gets_total 1",
		"precursor_entries 1",
		"precursor_clients 1",
		"# TYPE precursor_enclave_epc_pages gauge",
		"precursor_enclave_crypto_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	health, err := http.Get("http://" + metrics.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", health.StatusCode)
	}
}

// TestMetricsServerDoubleClose: Close is idempotent, including from
// concurrent goroutines.
func TestMetricsServerDoubleClose(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = metrics.Close()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent Close %d: %v", i, err)
		}
	}
	if err := metrics.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
}

// TestClusterMetricsEndpoint: ring placement, per-shard counters and
// shard health are exported with shard labels, and a dead shard flips to
// up=0.
func TestClusterMetricsEndpoint(t *testing.T) {
	cs, err := precursor.ServeCluster(2, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	cc, err := precursor.DialCluster(cs.Specs(), precursor.ClusterConfig{
		Timeout: 2 * time.Second, RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	for i := 0; i < 40; i++ {
		if err := cc.Put(fmt.Sprintf("mk%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	metrics, err := precursor.ServeClusterMetrics(cc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	fetch := func() string {
		t.Helper()
		resp, err := http.Get("http://" + metrics.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	text := fetch()
	for _, want := range []string{
		"precursor_cluster_shards 2",
		"precursor_cluster_shard_up{shard=\"" + cs.Shards[0].Addr() + "\"} 1",
		"precursor_cluster_shard_up{shard=\"" + cs.Shards[1].Addr() + "\"} 1",
		"precursor_cluster_shard_ownership{shard=\"" + cs.Shards[0].Addr() + "\"}",
		"precursor_cluster_shard_keys_estimate",
		"precursor_cluster_shard_puts_total",
		"precursor_cluster_shard_errors_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster metrics missing %q\n%s", want, text)
		}
	}

	// Kill shard 1 and trip its breaker; the endpoint reports it down.
	deadAddr := cs.Shards[1].Addr()
	cs.Shards[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var deadKey string
		for i := 0; ; i++ {
			k := fmt.Sprintf("dead%05d", i)
			if cc.ShardFor(k) == deadAddr {
				deadKey = k
				break
			}
		}
		if err := cc.Put(deadKey, []byte("x")); err != nil && len(cc.Degraded()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened for dead shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	text = fetch()
	if want := "precursor_cluster_shard_up{shard=\"" + deadAddr + "\"} 0"; !strings.Contains(text, want) {
		t.Errorf("metrics missing %q after shard death\n%s", want, text)
	}
}
