package precursor_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5). Each benchmark regenerates its artifact through internal/bench and
// reports the headline quantity as custom metrics, so
// `go test -bench=. -benchmem` reproduces the entire evaluation. The
// plain-text tables themselves come from `go run ./cmd/precursor-bench`.

import (
	"testing"
	"time"

	"precursor/internal/bench"
	"precursor/internal/sim"
)

// BenchmarkFigure1CryptoVsRDMA measures the server-encryption scheme's
// decrypt+re-encrypt throughput against the 40 Gb/s line rate (Figure 1).
func BenchmarkFigure1CryptoVsRDMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.Figure1([]int{6, 12}, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		// Report the 1 KiB / 12-thread point: the size the paper calls out
		// as ≈36 % below line rate.
		for _, p := range points {
			if p.BufferBytes == 1024 && p.Threads == 12 {
				b.ReportMetric(p.CryptoMBps, "crypto-MB/s@1KiB")
				b.ReportMetric(p.LineMBps, "line-MB/s")
			}
		}
	}
}

// benchThroughput runs one modelled closed-loop configuration per
// iteration and reports Kops/s.
func benchThroughput(b *testing.B, sys sim.System, clients, size int, readRatio float64) {
	b.Helper()
	var kops float64
	for i := 0; i < b.N; i++ {
		r := sim.Run(sim.RunConfig{
			System: sys, Clients: clients, ValueSize: size,
			ReadRatio: readRatio, Entries: 600000,
			Seed: int64(i + 1), Duration: 100 * time.Millisecond,
		})
		kops = r.Kops
	}
	b.ReportMetric(kops, "Kops/s")
}

// BenchmarkFigure4Workloads reproduces the read-ratio comparison
// (Figure 4): 32 B values, 50 clients.
func BenchmarkFigure4Workloads(b *testing.B) {
	for _, tc := range []struct {
		name  string
		sys   sim.System
		ratio float64
	}{
		{"Precursor/read100", sim.Precursor, 1.00},
		{"Precursor/read95", sim.Precursor, 0.95},
		{"Precursor/read50", sim.Precursor, 0.50},
		{"Precursor/read5", sim.Precursor, 0.05},
		{"ServerEnc/read100", sim.ServerEnc, 1.00},
		{"ServerEnc/read5", sim.ServerEnc, 0.05},
		{"ShieldStore/read100", sim.ShieldStore, 1.00},
		{"ShieldStore/read5", sim.ShieldStore, 0.05},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchThroughput(b, tc.sys, 50, 32, tc.ratio)
		})
	}
}

// BenchmarkFigure5ReadOnly reproduces the read-only value-size sweep (5a).
func BenchmarkFigure5ReadOnly(b *testing.B) {
	for _, size := range bench.Fig5Sizes {
		for _, sys := range bench.Systems {
			b.Run(sys.String()+"/"+byteName(size), func(b *testing.B) {
				benchThroughput(b, sys, 50, size, 1.0)
			})
		}
	}
}

// BenchmarkFigure5UpdateMostly reproduces the update-mostly sweep (5b).
func BenchmarkFigure5UpdateMostly(b *testing.B) {
	for _, size := range bench.Fig5Sizes {
		for _, sys := range bench.Systems {
			b.Run(sys.String()+"/"+byteName(size), func(b *testing.B) {
				benchThroughput(b, sys, 50, size, 0.05)
			})
		}
	}
}

// BenchmarkFigure6Clients reproduces the client-scaling sweep (Figure 6).
func BenchmarkFigure6Clients(b *testing.B) {
	for _, n := range []int{10, 30, 55, 80, 100} {
		b.Run("Precursor/clients"+itoa(n), func(b *testing.B) {
			benchThroughput(b, sim.Precursor, n, 32, 1.0)
		})
	}
}

// BenchmarkFigure7LatencyCDF reproduces the tail-latency experiment:
// low-load gets with p50/p95/p99 reported, including the EPC-paging run.
func BenchmarkFigure7LatencyCDF(b *testing.B) {
	for _, tc := range []struct {
		name    string
		sys     sim.System
		entries int
	}{
		{"Precursor", sim.Precursor, 600000},
		{"PrecursorEPCPaging", sim.Precursor, 3000000},
		{"ShieldStore", sim.ShieldStore, 600000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var r sim.RunResult
			for i := 0; i < b.N; i++ {
				r = sim.Run(sim.RunConfig{
					System: tc.sys, Clients: 4, ValueSize: 32, ReadRatio: 1,
					Entries: tc.entries, Seed: int64(i + 1),
					Duration: 100 * time.Millisecond,
				})
			}
			b.ReportMetric(float64(r.Latency.Quantile(0.50))/1e3, "p50-µs")
			b.ReportMetric(float64(r.Latency.Quantile(0.95))/1e3, "p95-µs")
			b.ReportMetric(float64(r.Latency.Quantile(0.99))/1e3, "p99-µs")
		})
	}
}

// BenchmarkFigure8Breakdown reproduces the latency breakdown: average
// networking vs server time per get.
func BenchmarkFigure8Breakdown(b *testing.B) {
	for _, sys := range []sim.System{sim.Precursor, sim.ShieldStore} {
		for _, size := range []int{16, 1024, 8192} {
			b.Run(sys.String()+"/"+byteName(size), func(b *testing.B) {
				model := sim.DefaultCostModel()
				var r sim.RunResult
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.RunConfig{
						System: sys, Clients: 4, ValueSize: size, ReadRatio: 1,
						Entries: 600000, Seed: int64(i + 1),
						Duration: 60 * time.Millisecond,
					})
				}
				b.ReportMetric(float64(r.NetTime.Mean())/1e3, "net-µs")
				b.ReportMetric(float64(model.ServerShare(sys, sim.Get, size))/1e3, "server-µs")
			})
		}
	}
}

// BenchmarkTable1EPCWorkingSet reproduces the EPC working-set table with
// the full functional stores (real inserts, real page accounting).
func BenchmarkTable1EPCWorkingSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "precursor" && r.Keys == 0 {
				b.ReportMetric(float64(r.Pages), "precursor-init-pages")
			}
			if r.System == "precursor" && r.Keys == 100000 {
				b.ReportMetric(r.MiB, "precursor-100k-MiB")
			}
			if r.System == "shieldstore" && r.Keys == 0 {
				b.ReportMetric(r.MiB, "shieldstore-init-MiB")
			}
		}
	}
}

func byteName(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return itoa(n/1024) + "KiB"
	}
	return itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
