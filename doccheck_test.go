package precursor_test

// Documentation lint: every exported declaration in every non-test source
// file must carry a doc comment — deliverable (e)'s "doc comments on
// every public item", enforced mechanically.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		// Example mains need no per-symbol docs beyond the package comment.
		if file.Name.Name == "main" {
			return nil
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					missing = append(missing, loc(path, fset, dd.Pos(), "func "+dd.Name.Name))
				}
			case *ast.GenDecl:
				groupDoc := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
							missing = append(missing, loc(path, fset, sp.Pos(), "type "+sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, loc(path, fset, sp.Pos(), "value "+name.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

func loc(path string, fset *token.FileSet, pos token.Pos, what string) string {
	p := fset.Position(pos)
	return path + ":" + strconv.Itoa(p.Line) + " " + what
}

// TestDocsCoverDurableTier pins the operator documentation for the
// value-log subsystem: the design rationale, the server flag, and the
// metric families dashboards are built on. A rename in code without the
// matching doc update fails here, not in a user's terminal.
func TestDocsCoverDurableTier(t *testing.T) {
	for _, tc := range []struct {
		file    string
		phrases []string
	}{
		{"DESIGN.md", []string{
			"Trusted/untrusted storage split",
			"group commit",
			"index-only",
		}},
		{"README.md", []string{
			"-data-dir",
			"-bench-vlog",
			"BENCH_vlog.json",
		}},
		{"OBSERVABILITY.md", []string{
			"srv_vlog_read",
			"precursor_vlog_segments",
			"precursor_vlog_group_commit_batch_avg",
			"precursor_vlog_read_throughs_total",
			"precursor_vlog_auth_failures_total",
			"precursor_vlog_gc_reclaimed_bytes_total",
			"precursor_seal_duration_seconds",
		}},
	} {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Errorf("read %s: %v", tc.file, err)
			continue
		}
		text := string(data)
		for _, phrase := range tc.phrases {
			if !strings.Contains(text, phrase) {
				t.Errorf("%s: missing %q", tc.file, phrase)
			}
		}
	}
}

// TestDocsCoverHeat pins the documentation for workload-heat
// telemetry: the metric families and debug endpoint, the
// skew-to-resharding operator workflow, the privacy guarantee (hashed
// ids only), and the user-facing flags. A rename in code without the
// matching doc update fails here.
func TestDocsCoverHeat(t *testing.T) {
	for _, tc := range []struct {
		file    string
		phrases []string
	}{
		{"README.md", []string{
			"-heat",
			"-bench-skew",
			"BENCH_heat.json",
			"/debug/heat",
		}},
		{"OBSERVABILITY.md", []string{
			"precursor_heat_ops_total",
			"precursor_heat_range_ops_total",
			"precursor_heat_top1_share",
			"precursor_heat_batch_fill_total",
			"precursor_slowop_suppressed_total",
			"precursor_fleet_hottest_target",
			"precursor_fleet_heat_skew_max_mean",
			"precursor_build_info",
			"precursor_uptime_seconds",
			"hashed key ids only",
			"Skew-to-resharding workflow",
			"/debug/heat",
			"-bench-skew",
			"BENCH_heat.json",
		}},
	} {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Errorf("read %s: %v", tc.file, err)
			continue
		}
		text := string(data)
		for _, phrase := range tc.phrases {
			if !strings.Contains(text, phrase) {
				t.Errorf("%s: missing %q", tc.file, phrase)
			}
		}
	}
}

// TestDocsCoverOverload pins the documentation for the
// overload-protection stack: the RETRY_LATER protocol section, the
// operator quickstart (drain, bench gate), and the shed/hedge/budget
// metric families and trace annotations. A rename in code without the
// matching doc update fails here.
func TestDocsCoverOverload(t *testing.T) {
	for _, tc := range []struct {
		file    string
		phrases []string
	}{
		{"PROTOCOL.md", []string{
			"Admission control: RETRY_LATER",
			"not an error",
			"never",
			"ErrUnconfirmed",
			"burn the oid",
			"retry budget",
			"draining",
		}},
		{"README.md", []string{
			"-drain-timeout",
			"-bench-overload",
			"BENCH_overload.json",
			"HedgeReads",
			"TestOverloadChaosShedRecover",
		}},
		{"OBSERVABILITY.md", []string{
			"precursor_overload_shed_reads_total",
			"precursor_overload_shed_writes_total",
			"precursor_overload_shed_batches_total",
			"precursor_overload_draining",
			"precursor_overload_admitted_total",
			"precursor_overload_inflight",
			"precursor_overload_service_ewma_seconds",
			"precursor_cluster_hedges_launched_total",
			"precursor_cluster_hedges_won_total",
			"precursor_cluster_hedges_denied_total",
			"precursor_retry_budget_tokens",
			"precursor_retry_budget_granted_total",
			"precursor_retry_budget_denied_total",
			"shed read (overload)",
			"shed write (overload)",
			"shed batch (overload)",
			"hedge launched",
			"hedge won",
			"-bench-overload",
			"BENCH_overload.json",
			"draining",
		}},
	} {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Errorf("read %s: %v", tc.file, err)
			continue
		}
		text := string(data)
		for _, phrase := range tc.phrases {
			if !strings.Contains(text, phrase) {
				t.Errorf("%s: missing %q", tc.file, phrase)
			}
		}
	}
}

// TestDocsCoverBatching pins the documentation for multi-op batch
// frames: the wire-format section, the user-facing quickstart and
// bench flag, and the observability stages/metric families. A rename
// in code without the matching doc update fails here.
func TestDocsCoverBatching(t *testing.T) {
	for _, tc := range []struct {
		file    string
		phrases []string
	}{
		{"PROTOCOL.md", []string{
			"Batch frames (multi-op)",
			"burns the oid",
			"per-op results",
			"ErrUnconfirmed",
		}},
		{"README.md", []string{
			"-bench-batch",
			"BENCH_batch.json",
			"BatchAsync",
			"precursor.BatchOp",
		}},
		{"OBSERVABILITY.md", []string{
			"cli_batch",
			"srv_batch",
			"precursor_batches_total",
			"precursor_batched_ops_total",
		}},
	} {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Errorf("read %s: %v", tc.file, err)
			continue
		}
		text := string(data)
		for _, phrase := range tc.phrases {
			if !strings.Contains(text, phrase) {
				t.Errorf("%s: missing %q", tc.file, phrase)
			}
		}
	}
}

// TestDocsCoverTracing pins the documentation for end-to-end trace
// correlation: the sealed trace-context wire section with its AD
// coverage note, the tail-sampling and exemplar semantics, the
// stitching endpoints/flags, and the CLI workflow. A rename in code
// without the matching doc update fails here.
func TestDocsCoverTracing(t *testing.T) {
	for _, tc := range []struct {
		file    string
		phrases []string
	}{
		{"PROTOCOL.md", []string{
			"Trace context",
			"inside the sealed control plaintext",
			"AD coverage",
			"clientID(4) ‖ traceID(8 LE)",
			"precursor_trace_context_errors_total",
		}},
		{"README.md", []string{
			"-trace-ring",
			"-tail-sample",
			"precursor-cli trace",
		}},
		{"OBSERVABILITY.md", []string{
			"End-to-end trace correlation",
			"timebase_unix_nano",
			"?raw=1",
			"precursor-cli trace",
			"Tail sampling",
			"precursor_traces_retained_total",
			"precursor_traces_discarded_total",
			"precursor_trace_context_errors_total",
			"trace_id",
			"-tail-sample",
			"-trace-ring",
		}},
	} {
		data, err := os.ReadFile(tc.file)
		if err != nil {
			t.Errorf("read %s: %v", tc.file, err)
			continue
		}
		text := string(data)
		for _, phrase := range tc.phrases {
			if !strings.Contains(text, phrase) {
				t.Errorf("%s: missing %q", tc.file, phrase)
			}
		}
	}
}
