package precursor_test

// Documentation lint: every exported declaration in every non-test source
// file must carry a doc comment — deliverable (e)'s "doc comments on
// every public item", enforced mechanically.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		// Example mains need no per-symbol docs beyond the package comment.
		if file.Name.Name == "main" {
			return nil
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					missing = append(missing, loc(path, fset, dd.Pos(), "func "+dd.Name.Name))
				}
			case *ast.GenDecl:
				groupDoc := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
							missing = append(missing, loc(path, fset, sp.Pos(), "type "+sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, loc(path, fset, sp.Pos(), "value "+name.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

func loc(path string, fset *token.FileSet, pos token.Pos, what string) string {
	p := fset.Position(pos)
	return path + ":" + strconv.Itoa(p.Line) + " " + what
}
