package precursor_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"precursor"
	"precursor/internal/fleet"
	"precursor/internal/ycsb"
)

// TestHeatMetricsEndpoint: a server with a heat collector attached
// exports the precursor_heat_* families, the build-info/uptime series
// and the slow-op suppression counter on /metrics, and serves the
// heavy-hitter snapshot on /debug/heat as JSON that never leaks a
// plaintext key.
func TestHeatMetricsEndpoint(t *testing.T) {
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	heatColl := precursor.NewHeatCollector(precursor.HeatConfig{})
	tracer := precursor.NewTracer(precursor.TracerConfig{Side: precursor.SideServer, Workers: 2})
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform, Workers: 2, PollInterval: time.Microsecond,
		Heat: heatColl, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	metrics, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0",
		precursor.WithHeat("server", heatColl),
		precursor.WithTracer("server", tracer))
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Close()

	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// One dominant key plus background traffic so the top-1 share is
	// meaningful, and a batch frame so the fill histogram is populated.
	const hotKey = "sensitive-customer-key"
	for i := 0; i < 8; i++ {
		if err := client.Put(hotKey, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := client.Put(fmt.Sprintf("cold%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Get(hotKey); err != nil {
		t.Fatal(err)
	}
	if results, err := client.Batch([]precursor.BatchOp{
		{Kind: precursor.BatchPut, Key: "hb", Value: []byte("v")},
		{Kind: precursor.BatchGet, Key: hotKey},
	}); err != nil || results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("batch: %v %+v", err, results)
	}

	text := string(httpGet(t, "http://"+metrics.Addr()+"/metrics", http.StatusOK))
	for _, want := range []string{
		`precursor_build_info{version="` + precursor.Version + `"`,
		"precursor_uptime_seconds",
		// 9 puts (8 hot + the batch one is batched... counted per kind too)
		`precursor_heat_ops_total{side="server",kind="put"} 13`,
		`precursor_heat_ops_total{side="server",kind="get"} 2`,
		`precursor_heat_op_rate{side="server",kind="put"}`,
		`precursor_heat_bytes_in_total{side="server"}`,
		`precursor_heat_bytes_out_total{side="server"}`,
		`precursor_heat_range_ops_total{side="server",bucket="`,
		`precursor_heat_range_skew_cv{side="server"}`,
		`precursor_heat_range_skew_max_mean{side="server"}`,
		`precursor_heat_top1_share{side="server"}`,
		`precursor_heat_topk_share{side="server"}`,
		`precursor_heat_batches_total{side="server"} 1`,
		`precursor_heat_batched_ops_total{side="server"} 2`,
		`precursor_heat_batch_fill_total{side="server",le="2"} 1`,
		`precursor_heat_batch_fill_total{side="server",le="+Inf"} 1`,
		`precursor_heat_uptime_seconds{side="server"}`,
		`precursor_slowop_suppressed_total{side="server"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	validatePromText(t, text)

	raw := httpGet(t, "http://"+metrics.Addr()+"/debug/heat", http.StatusOK)
	if bytes.Contains(raw, []byte(hotKey)) {
		t.Fatalf("/debug/heat leaks a plaintext key:\n%s", raw)
	}
	var payload []struct {
		Side string                 `json:"side"`
		Heat precursor.HeatSnapshot `json:"heat"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("parse /debug/heat: %v\n%s", err, raw)
	}
	if len(payload) != 1 || payload[0].Side != "server" {
		t.Fatalf("/debug/heat payload = %+v, want one server-side snapshot", payload)
	}
	snap := payload[0].Heat
	if len(snap.Top) == 0 {
		t.Fatal("/debug/heat reports no heavy hitters after traffic")
	}
	// The dominant key must be the reported top-1, by hashed id only.
	if want := precursor.HeatHashKey(hotKey); snap.Top[0].Hash != want {
		t.Errorf("top-1 hash = %016x, want %016x (the dominant key)", snap.Top[0].Hash, want)
	}
	if snap.Top[0].Count < 10 {
		t.Errorf("top-1 count = %d, want >= 10 (8 puts + get + batched get)", snap.Top[0].Count)
	}

	// An endpoint with no collector attached 404s the debug route.
	bare, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	httpGet(t, "http://"+bare.Addr()+"/debug/heat", http.StatusNotFound)
}

// heatTally is an exact per-key op counter wrapped around the cluster
// client — the ground truth the sketch recall is measured against.
type heatTally struct {
	inner ycsb.Store
	mu    sync.Mutex
	count map[string]uint64
}

func (h *heatTally) Put(key string, value []byte) error {
	h.note(key)
	return h.inner.Put(key, value)
}

func (h *heatTally) Get(key string) ([]byte, error) {
	h.note(key)
	return h.inner.Get(key)
}

func (h *heatTally) note(key string) {
	h.mu.Lock()
	h.count[key]++
	h.mu.Unlock()
}

// TestHeatFleetAcceptance is the workload-heat acceptance test: under a
// zipf θ=1.2 workload on a 4-shard cluster,
//
//   - every shard's /metrics feeds a fleet aggregator whose /fleet
//     rollup names the hottest shard — and that shard matches an exact
//     client-side tally of per-shard ops;
//   - GET /debug/heat on the hottest shard lists the true top-10 hashed
//     key ids (vs exact counts of keys routed there) with >= 90% recall.
func TestHeatFleetAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("heat acceptance test skipped in -short mode")
	}
	const (
		shards       = 4
		records      = 1500
		clients      = 8
		opsPerClient = 1500
		theta        = 1.2
	)

	// Serve each shard individually so every shard carries its own heat
	// collector and its own metrics endpoint (one scrape target per
	// shard, as a fleet deployment would).
	var (
		specs     []precursor.ShardSpec
		heats     []*precursor.HeatCollector
		endpoints []*precursor.MetricsServer
		addrIdx   = map[string]int{} // shard addr -> index
		targets   []fleet.Target
	)
	for i := 0; i < shards; i++ {
		platform, err := precursor.NewPlatform()
		if err != nil {
			t.Fatal(err)
		}
		hc := precursor.NewHeatCollector(precursor.HeatConfig{})
		svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
			Platform: platform, Workers: 2, PollInterval: 50 * time.Microsecond,
			Heat: hc,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		ms, err := precursor.ServeMetrics(svc.Server, "127.0.0.1:0",
			precursor.WithHeat("server", hc))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ms.Close() })
		specs = append(specs, precursor.ShardSpec{
			Addr:        svc.Addr(),
			PlatformKey: platform.AttestationPublicKey(),
			Measurement: svc.Server.Measurement(),
		})
		heats = append(heats, hc)
		endpoints = append(endpoints, ms)
		addrIdx[svc.Addr()] = i
		targets = append(targets, fleet.Target{
			Name: fmt.Sprintf("shard%d", i),
			URL:  "http://" + ms.Addr() + "/metrics",
		})
	}

	routeHeat := precursor.NewHeatCollector(precursor.HeatConfig{})
	cc, err := precursor.DialCluster(specs, precursor.ClusterConfig{
		Timeout: 10 * time.Second, Heat: routeHeat,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })

	// Drive the zipf workload through an exact tally. The load phase
	// goes through the tally too, so the exact counts cover everything
	// the servers saw.
	tally := &heatTally{inner: cc, count: make(map[string]uint64)}
	if err := ycsb.Load(tally, records, 64, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := ycsb.RunShared(tally, ycsb.RunnerConfig{
		Workload: ycsb.WorkloadB, Records: records, ValueSize: 64,
		Dist: ycsb.Zipfian, ZipfTheta: theta,
		Clients: clients, OpsPerClient: opsPerClient, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("workload hit %d errors", rep.Errors)
	}

	// Fleet endpoint: aggregate the four shard scrape targets, plus the
	// client's routing-side heat on the same endpoint.
	agg, err := fleet.New(fleet.Config{Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	fleetMS, err := precursor.ServeClusterMetrics(cc, "127.0.0.1:0",
		precursor.WithFleet(agg), precursor.WithHeat("client", routeHeat))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fleetMS.Close() })
	agg.ScrapeOnce()

	// Exact per-shard op totals from the tally and the client's ring.
	exactShardOps := make([]uint64, shards)
	tally.mu.Lock()
	type keyCount struct {
		key string
		n   uint64
	}
	var all []keyCount
	for k, c := range tally.count {
		idx, ok := addrIdx[cc.ShardFor(k)]
		if !ok {
			tally.mu.Unlock()
			t.Fatalf("ShardFor(%q) names an unknown shard", k)
		}
		exactShardOps[idx] += c
		all = append(all, keyCount{k, c})
	}
	tally.mu.Unlock()
	exactHottest := 0
	for i, n := range exactShardOps {
		if n > exactShardOps[exactHottest] {
			exactHottest = i
		}
	}

	// /fleet must name that shard as the hottest target.
	fleetBody := httpGet(t, "http://"+fleetMS.Addr()+"/fleet", http.StatusOK)
	samples, err := fleet.ParseProm(bytes.NewReader(fleetBody))
	if err != nil {
		t.Fatalf("parse /fleet: %v", err)
	}
	var fleetHottest string
	heatTargets := 0
	for _, s := range samples {
		switch s.Name {
		case "precursor_fleet_hottest_target":
			fleetHottest = s.Labels["target"]
		case "precursor_fleet_heat_ops_total":
			heatTargets++
		}
	}
	if heatTargets != shards {
		t.Errorf("/fleet exports heat ops for %d targets, want %d\n%s", heatTargets, shards, fleetBody)
	}
	wantHottest := fmt.Sprintf("shard%d", exactHottest)
	if fleetHottest != wantHottest {
		t.Fatalf("/fleet hottest target = %q, want %q (exact per-shard ops %v)",
			fleetHottest, wantHottest, exactShardOps)
	}

	// True top-10 of the keys routed to the hottest shard, by exact
	// count.
	hotAddr := specs[exactHottest].Addr
	var onShard []keyCount
	for _, kc := range all {
		if cc.ShardFor(kc.key) == hotAddr {
			onShard = append(onShard, kc)
		}
	}
	sort.Slice(onShard, func(i, j int) bool {
		if onShard[i].n != onShard[j].n {
			return onShard[i].n > onShard[j].n
		}
		return onShard[i].key < onShard[j].key
	})
	topN := 10
	if topN > len(onShard) {
		topN = len(onShard)
	}

	// /debug/heat on the hottest shard must list >= 90% of those keys'
	// hashed ids among its reported heavy hitters.
	raw := httpGet(t, "http://"+endpoints[exactHottest].Addr()+"/debug/heat", http.StatusOK)
	var payload []struct {
		Side string                 `json:"side"`
		Heat precursor.HeatSnapshot `json:"heat"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("parse /debug/heat: %v\n%s", err, raw)
	}
	if len(payload) != 1 || payload[0].Side != "server" {
		t.Fatalf("/debug/heat payload sides = %+v, want one server snapshot", payload)
	}
	reported := payload[0].Heat.Top
	listed := make(map[uint64]bool, len(reported))
	for _, e := range reported {
		listed[e.Hash] = true
	}
	hits := 0
	for _, kc := range onShard[:topN] {
		if listed[precursor.HeatHashKey(kc.key)] {
			hits++
		}
	}
	recall := float64(hits) / float64(topN)
	t.Logf("theta=%g ops=%d shard ops=%v hottest=%s recall=%d/%d",
		theta, rep.Ops, exactShardOps, wantHottest, hits, topN)
	if recall < 0.9 {
		t.Fatalf("hottest shard top-%d recall = %.2f, want >= 0.90", topN, recall)
	}

	// The per-shard heat the fleet rolled up must agree with the shard's
	// own collector (same snapshot source), and the routing-side view on
	// the fleet endpoint must carry client-side heat too.
	roll := agg.Snapshot()
	if roll.HottestTarget != wantHottest {
		t.Errorf("rollup hottest = %q, want %q", roll.HottestTarget, wantHottest)
	}
	if roll.HeatSkew.MaxMean < 1.0 {
		t.Errorf("rollup heat skew max/mean = %g, want >= 1", roll.HeatSkew.MaxMean)
	}
	if got := routeHeat.Snapshot().TotalOps(); got == 0 {
		t.Error("routing-side heat collector recorded no ops")
	}
	fleetProm := string(fleetBody)
	for _, want := range []string{
		"precursor_fleet_heat_skew_max_mean",
		`precursor_fleet_hottest_target{target="` + wantHottest + `"} 1`,
	} {
		if !strings.Contains(fleetProm, want) {
			t.Errorf("/fleet missing %q", want)
		}
	}
	fleetText := string(httpGet(t, "http://"+fleetMS.Addr()+"/metrics", http.StatusOK))
	if want := `precursor_heat_ops_total{side="client",kind="put"}`; !strings.Contains(fleetText, want) {
		t.Errorf("fleet endpoint /metrics missing %q (routing-side heat)", want)
	}
	validatePromText(t, fleetText)
}
