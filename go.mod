module precursor

go 1.22
