package precursor_test

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"precursor"
	"precursor/internal/faultfab"
)

// overloadChaosSeed fixes both the fault-injection schedule and the
// drain toggler's shard choices so failures reproduce.
const overloadChaosSeed = 0x0BADC0DE

// TestOverloadChaosShedRecover is the shed/recover chaos acceptance
// test for the overload-protection stack: unique-key puts are driven
// through a gated two-shard fleet over a faulty wire (a seeded delay
// tail on client->server ring writes) while a toggler cycles shards
// through drain — every op shed with a sealed RETRY_LATER — and back.
// Afterwards three invariants must hold:
//
//   - acked-put-never-lost: every put the client acked reads back with
//     its exact value through a separate fault-free client;
//   - shed-means-not-applied: every put that failed (shed with the
//     pool's retry budget exhausted or retries capped) left no trace;
//   - no-retry-storm: server arrivals per logical client put stay
//     bounded — the pool's token-bucket retry budget and hint-honoring
//     backoff keep shed-driven retries from amplifying offered load.
func TestOverloadChaosShedRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("overload chaos acceptance test skipped in -short mode")
	}
	const (
		shards    = 2
		writers   = 4
		perWriter = 150
		// Drain duty cycle: one shard at a time, 20ms drained out of
		// every 200ms. Gentle on purpose — the point is repeated
		// shed/recover transitions, not a fleet that is mostly down.
		cycle = 200 * time.Millisecond
		span  = 20 * time.Millisecond
	)

	// One single-shard service per shard, each with its own admission
	// gate, so drain cycles hit shards independently.
	type deploy struct {
		svcs  []*precursor.Service
		specs []precursor.ShardSpec
	}
	var d deploy
	for i := 0; i < shards; i++ {
		platform, err := precursor.NewPlatform()
		if err != nil {
			t.Fatal(err)
		}
		svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
			Workers:  1,
			Platform: platform,
			Overload: precursor.NewOverloadGate(precursor.OverloadGateConfig{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		d.svcs = append(d.svcs, svc)
		d.specs = append(d.specs, precursor.ShardSpec{
			Addr:        svc.Addr(),
			PlatformKey: platform.AttestationPublicKey(),
			Measurement: svc.Server.Measurement(),
		})
	}
	arrivals := func() uint64 {
		var n uint64
		for _, svc := range d.svcs {
			st := svc.Server.Stats()
			n += st.Puts + st.Gets + st.Deletes
			n += st.ShedReads + st.ShedWrites + st.ShedBatches
		}
		return n
	}
	sheds := func() uint64 {
		var n uint64
		for _, svc := range d.svcs {
			st := svc.Server.Stats()
			n += st.ShedReads + st.ShedWrites + st.ShedBatches
		}
		return n
	}

	// The client under test rides a faulty wire: a delay tail on
	// client->server ring writes. Delay-only on purpose — drops and
	// resets would trip shard breakers and conflate breaker probes with
	// the retry traffic this test bounds.
	ffab := faultfab.New(faultfab.Config{
		Seed: overloadChaosSeed,
		C2S: faultfab.ClassMap{faultfab.ClassWrite: faultfab.ClassProbs{
			Delay: 0.05, MaxDelay: 4 * time.Millisecond,
		}},
	})
	var connSeq atomic.Uint64
	cc, err := precursor.DialCluster(d.specs, precursor.ClusterConfig{
		ConnsPerShard: 1,
		Timeout:       10 * time.Second,
		WrapConn: func(c precursor.Conn) precursor.Conn {
			return ffab.Wrap(c, faultfab.C2S, fmt.Sprintf("conn%d", connSeq.Add(1)))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })

	before := arrivals()
	shedsBefore := sheds()

	// Drain/recover toggler: one seeded-random shard per cycle.
	stop := make(chan struct{})
	var togglerDone sync.WaitGroup
	togglerDone.Add(1)
	go func() {
		defer togglerDone.Done()
		rng := rand.New(rand.NewPCG(overloadChaosSeed, 0x70661E))
		for {
			select {
			case <-stop:
				return
			case <-time.After(cycle - span):
			}
			svc := d.svcs[rng.IntN(len(d.svcs))]
			svc.Server.SetDraining(true)
			select {
			case <-stop:
			case <-time.After(span):
			}
			svc.Server.SetDraining(false)
		}
	}()

	// Writers: unique keys, deterministic values, every ack recorded.
	// The pool retries sheds under its retry budget; a put that still
	// fails is simply not acked.
	type outcome struct {
		key, val string
		acked    bool
	}
	results := make(chan outcome, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("ovlchaos-w%d-k%d", w, i)
				val := key + "-v"
				err := cc.Put(key, []byte(val))
				if err != nil && !errors.Is(err, precursor.ErrRetryLater) {
					t.Errorf("Put(%s): unexpected error %v (only RETRY_LATER may surface)", key, err)
				}
				results <- outcome{key, val, err == nil}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	togglerDone.Wait()
	close(results)
	for _, svc := range d.svcs {
		svc.Server.SetDraining(false)
	}

	const logicalPuts = writers * perWriter
	arrived := arrivals() - before
	shed := sheds() - shedsBefore
	amplification := float64(arrived) / float64(logicalPuts)
	t.Logf("logical=%d arrivals=%d sheds=%d amplification=%.3f", logicalPuts, arrived, shed, amplification)

	// No-retry-storm: the budget deposits ~1 token per 10 successes on
	// top of its initial burst, and each pool op retries a shed at most
	// maxShedRetries times with hint-honoring backoff, so arrivals stay
	// within a whisker of the logical load. A storm (naive immediate
	// retry of every shed) multiplies arrivals instead. The tight
	// production bound (1.10 over a longer run) is enforced by the
	// -bench-overload gate; the short run here gets a little slack for
	// the bucket's initial burst.
	if amplification > 1.15 {
		t.Errorf("retry amplification %.3f > 1.15 — shed retries are storming", amplification)
	}
	// The run must actually have exercised shedding, or the invariants
	// above were tested against nothing.
	if shed == 0 {
		t.Errorf("no ops were shed across %d drain cycles — chaos schedule is not biting", int(logicalPuts))
	}

	// Readback through a separate fault-free client against the fully
	// recovered fleet: acked puts must all survive with their exact
	// values, and failed (shed) puts must never have been applied —
	// RETRY_LATER is a guarantee of non-execution, not a maybe.
	clean, err := precursor.DialCluster(d.specs, precursor.ClusterConfig{
		ConnsPerShard: 1,
		Timeout:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clean.Close() })

	var acked, lost, ghosts int
	for r := range results {
		v, err := clean.Get(r.key)
		if r.acked {
			acked++
			if err != nil || string(v) != r.val {
				lost++
				t.Errorf("acked put %s lost: %q, %v", r.key, v, err)
			}
		} else if !errors.Is(err, precursor.ErrNotFound) {
			ghosts++
			t.Errorf("shed put %s was applied anyway: %q, %v", r.key, v, err)
		}
	}
	t.Logf("acked=%d/%d lost=%d ghosts=%d", acked, logicalPuts, lost, ghosts)
	if acked == 0 {
		t.Fatal("no puts were acked — the fleet never served")
	}
}
