package precursor

import (
	"crypto/ecdsa"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"precursor/internal/core"
	"precursor/internal/rdma"
)

// Service is a Precursor server listening on the TCP fabric: the
// cross-process deployment path (cmd/precursor-server wraps it).
type Service struct {
	Server *Server

	listener *rdma.TCPListener
	stopOnce sync.Once
	done     chan struct{}

	connMu sync.Mutex
	conns  []rdma.Conn
}

// Serve starts a Precursor server on addr over the TCP fabric and accepts
// client connections until Close. Pass ":0" to pick a free port; Addr
// reports the bound address.
func Serve(addr string, cfg ServerConfig) (*Service, error) {
	device := rdma.NewDevice("precursor-server")
	server, err := core.NewServer(device, cfg)
	if err != nil {
		return nil, err
	}
	ln, err := rdma.ListenTCP(device, addr)
	if err != nil {
		server.Close()
		return nil, err
	}
	svc := &Service{Server: server, listener: ln, done: make(chan struct{})}
	go func() {
		defer close(svc.done)
		for {
			qp, err := ln.Accept()
			if err != nil {
				return
			}
			// Track the accepted queue pair so Close can sever it: a
			// stopping server must hang up on its clients, or their
			// in-flight operations sit out the full op timeout before
			// discovering the outage (a cluster client's failover would
			// be timeout-bound instead of detection-bound).
			svc.connMu.Lock()
			svc.conns = append(svc.conns, qp)
			svc.connMu.Unlock()
			go func() {
				if _, err := server.HandleConnection(qp); err != nil {
					_ = qp.Close()
				}
			}()
		}
	}()
	return svc, nil
}

// Addr returns the service's bound address.
func (s *Service) Addr() string { return s.listener.Addr() }

// Close stops accepting connections, hangs up on connected clients and
// shuts the server down.
func (s *Service) Close() {
	s.stopOnce.Do(func() {
		_ = s.listener.Close()
		<-s.done
		s.connMu.Lock()
		conns := s.conns
		s.conns = nil
		s.connMu.Unlock()
		for _, qp := range conns {
			_ = qp.Close()
		}
		s.Server.Close()
	})
}

// ClusterService is an N-shard Precursor deployment on this process: N
// independent single-node Services, each with its own enclave (and, by
// default, its own platform attestation identity). Clients route across
// the shards themselves — see DialCluster.
type ClusterService struct {
	// Shards are the running per-shard services, in shard order.
	Shards []*Service

	platforms []*Platform
}

// ServeCluster launches n shards over the TCP fabric, each listening on
// its own ephemeral port. cfg applies to every shard; when cfg.Platform
// is nil each shard gets a fresh platform, so clients attest every shard
// independently (the cluster trust model — no shared server-side secret).
func ServeCluster(n int, cfg ServerConfig) (*ClusterService, error) {
	if n <= 0 {
		return nil, fmt.Errorf("precursor: cluster needs at least one shard, got %d", n)
	}
	cs := &ClusterService{}
	for i := 0; i < n; i++ {
		shardCfg := cfg
		if shardCfg.DataDir != "" {
			// Each shard owns its own value log: segment files are
			// append-ordered per enclave and cannot be shared.
			shardCfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%d", i))
		}
		if shardCfg.Platform == nil {
			platform, err := NewPlatform()
			if err != nil {
				cs.Close()
				return nil, fmt.Errorf("shard %d platform: %w", i, err)
			}
			shardCfg.Platform = platform
		}
		svc, err := Serve("127.0.0.1:0", shardCfg)
		if err != nil {
			cs.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		cs.Shards = append(cs.Shards, svc)
		cs.platforms = append(cs.platforms, shardCfg.Platform)
	}
	return cs, nil
}

// Specs returns the ShardSpecs a client needs to DialCluster this
// deployment: each shard's address, attestation key and measurement.
func (cs *ClusterService) Specs() []ShardSpec {
	specs := make([]ShardSpec, len(cs.Shards))
	for i, svc := range cs.Shards {
		specs[i] = ShardSpec{
			Addr:        svc.Addr(),
			PlatformKey: cs.platforms[i].AttestationPublicKey(),
			Measurement: svc.Server.Measurement(),
		}
	}
	return specs
}

// Close shuts every shard down.
func (cs *ClusterService) Close() {
	for _, svc := range cs.Shards {
		svc.Close()
	}
}

// ReplicatedClusterService is a deployment whose ring positions are
// replica groups: Groups[g] holds R independent Services that replicate
// the same key range. Replicas of a group share one platform (and the
// same enclave image), so their sealing keys match and a sealed snapshot
// taken on one replica restores on another — the transfer anti-entropy
// repair performs. Clients drive the replication; see
// DialReplicatedCluster.
type ReplicatedClusterService struct {
	// Groups are the running services, Groups[g][r] = replica r of group g.
	Groups [][]*Service

	platforms []*Platform    // one per group, shared by its replicas
	cfgs      []ServerConfig // per-group config (with Platform set)
}

// ServeReplicatedCluster launches groups×replicas servers over the TCP
// fabric: `groups` ring positions, each backed by `replicas` copies.
// When cfg.Platform is nil each *group* gets a fresh platform shared by
// its replicas (clients still attest every replica separately; replicas
// of different groups share nothing).
func ServeReplicatedCluster(groups, replicas int, cfg ServerConfig) (*ReplicatedClusterService, error) {
	if groups <= 0 || replicas <= 0 {
		return nil, fmt.Errorf("precursor: replicated cluster needs groups>0 and replicas>0, got %d×%d", groups, replicas)
	}
	cs := &ReplicatedClusterService{}
	for g := 0; g < groups; g++ {
		groupCfg := cfg
		if groupCfg.Platform == nil {
			platform, err := NewPlatform()
			if err != nil {
				cs.Close()
				return nil, fmt.Errorf("group %d platform: %w", g, err)
			}
			groupCfg.Platform = platform
		}
		var members []*Service
		for r := 0; r < replicas; r++ {
			replicaCfg := groupCfg
			if replicaCfg.DataDir != "" {
				// Replicas share a sealing key but never a value log; give
				// each its own directory so repairs restore into fresh logs.
				replicaCfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("group-%d", g), fmt.Sprintf("replica-%d", r))
			}
			svc, err := Serve("127.0.0.1:0", replicaCfg)
			if err != nil {
				for _, m := range members {
					m.Close()
				}
				cs.Close()
				return nil, fmt.Errorf("group %d replica %d: %w", g, r, err)
			}
			members = append(members, svc)
		}
		cs.Groups = append(cs.Groups, members)
		cs.platforms = append(cs.platforms, groupCfg.Platform)
		cs.cfgs = append(cs.cfgs, groupCfg)
	}
	return cs, nil
}

// GroupSpecs returns the per-group ShardSpecs a client needs to
// DialReplicatedCluster this deployment.
func (cs *ReplicatedClusterService) GroupSpecs() [][]ShardSpec {
	specs := make([][]ShardSpec, len(cs.Groups))
	for g, members := range cs.Groups {
		for _, svc := range members {
			specs[g] = append(specs[g], ShardSpec{
				Addr:        svc.Addr(),
				PlatformKey: cs.platforms[g].AttestationPublicKey(),
				Measurement: svc.Server.Measurement(),
			})
		}
	}
	return specs
}

// RestartReplica kills replica r of group g and starts a fresh server —
// empty state, same address, same platform (so its attestation identity
// and sealing key are unchanged). This models a machine rebooting after
// a crash: the replica must be repaired from its peers (snapshot + delta
// replay through a repairing client) before it holds any data again.
func (cs *ReplicatedClusterService) RestartReplica(g, r int) (*Service, error) {
	if g < 0 || g >= len(cs.Groups) || r < 0 || r >= len(cs.Groups[g]) {
		return nil, fmt.Errorf("precursor: no replica %d/%d", g, r)
	}
	old := cs.Groups[g][r]
	addr := old.Addr()
	old.Close()
	cfg := cs.cfgs[g]
	if cfg.DataDir != "" {
		// Reattach the replica's own value-log directory (mirrors
		// ServeReplicatedCluster's layout).
		cfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("group-%d", g), fmt.Sprintf("replica-%d", r))
	}
	svc, err := Serve(addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("restart replica %d/%d on %s: %w", g, r, addr, err)
	}
	cs.Groups[g][r] = svc
	return svc, nil
}

// Close shuts every replica of every group down.
func (cs *ReplicatedClusterService) Close() {
	for _, members := range cs.Groups {
		for _, svc := range members {
			svc.Close()
		}
	}
}

// DialConfig configures Dial.
type DialConfig struct {
	// PlatformKey verifies the server's attestation quotes; required.
	PlatformKey *ecdsa.PublicKey
	// Measurement pins the expected enclave build; required.
	Measurement Measurement
	// Timeout bounds each operation (default 5 s).
	Timeout time.Duration
	// ReadRetries bounds the extra attempts an idempotent read makes
	// after a transient failure, within Timeout (0 = default, <0 = off).
	ReadRetries int
	// WrapConn, when set, interposes on the freshly dialed queue pair
	// before the attestation handshake — the hook the chaos harness uses
	// to inject transport faults (internal/faultfab), also usable for
	// tracing or traffic accounting. Must return a conn that delegates
	// to its argument.
	WrapConn func(rdma.Conn) rdma.Conn
	// Tracer, when set, records client-side stage timing for every
	// operation (see OBSERVABILITY.md). Share one SideClient tracer
	// across pooled or sharded connections to aggregate their stats.
	Tracer *Tracer
}

// Dial connects to a Serve-d Precursor instance over the TCP fabric,
// performing remote attestation before any data flows.
func Dial(addr string, cfg DialConfig) (*Client, error) {
	if cfg.PlatformKey == nil {
		return nil, fmt.Errorf("precursor: DialConfig.PlatformKey is required")
	}
	device := rdma.NewDevice("precursor-client-" + addr)
	conn, err := rdma.DialTCP(device, addr)
	if err != nil {
		return nil, err
	}
	var wrapped rdma.Conn = conn
	if cfg.WrapConn != nil {
		wrapped = cfg.WrapConn(conn)
	}
	client, err := core.Connect(core.ClientConfig{
		Conn: wrapped, Device: device,
		PlatformKey: cfg.PlatformKey,
		Measurement: cfg.Measurement,
		Timeout:     cfg.Timeout,
		ReadRetries: cfg.ReadRetries,
		Tracer:      cfg.Tracer,
	})
	if err != nil {
		_ = wrapped.Close()
		return nil, err
	}
	return client, nil
}
