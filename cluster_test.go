package precursor_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"precursor"
)

func newTestCluster(t *testing.T, shards int) (*precursor.ClusterService, *precursor.ClusterClient) {
	t.Helper()
	// One worker per shard and a gentle poll interval: the test may run
	// on a single-core machine, where N shards' trusted threads
	// busy-spinning at 1µs would starve each other.
	cs, err := precursor.ServeCluster(shards, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)
	cc, err := precursor.DialCluster(cs.Specs(), precursor.ClusterConfig{
		ConnsPerShard: 2,
		Timeout:       5 * time.Second,
		RetryBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cc.Close() })
	return cs, cc
}

// TestClusterRoundTrip is the subsystem's acceptance test: a 4-shard
// cluster round-trips 1000 keys with balanced placement, survives a shard
// dying (the others keep serving; the dead shard's errors are typed and
// fast), and recovers nothing silently.
func TestClusterRoundTrip(t *testing.T) {
	const shards, keys = 4, 1000
	cs, cc := newTestCluster(t, shards)

	key := func(i int) string { return fmt.Sprintf("user%06d", i) }
	for i := 0; i < keys; i++ {
		if err := cc.Put(key(i), []byte("v-"+key(i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < keys; i++ {
		v, err := cc.Get(key(i))
		if err != nil || string(v) != "v-"+key(i) {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}

	// Placement balance: per-shard key counts within 2x of each other,
	// and consistent with what each shard server actually stored.
	st := cc.Stats()
	if st.Puts != keys || st.Gets != keys {
		t.Errorf("aggregate puts=%d gets=%d, want %d each", st.Puts, st.Gets, keys)
	}
	entriesByAddr := map[string]int{}
	for _, svc := range cs.Shards {
		entriesByAddr[svc.Addr()] = svc.Server.Stats().Entries
	}
	lo, hi := uint64(1<<62), uint64(0)
	for _, ss := range st.Shards {
		if ss.Puts < lo {
			lo = ss.Puts
		}
		if ss.Puts > hi {
			hi = ss.Puts
		}
		if entries := entriesByAddr[ss.Name]; uint64(entries) != ss.Puts {
			t.Errorf("shard %s: client routed %d puts but server stores %d entries",
				ss.Name, ss.Puts, entries)
		}
	}
	if hi > 2*lo {
		t.Errorf("shard imbalance >2x: min=%d max=%d (%+v)", lo, hi, st.Shards)
	}

	// Kill one shard. Its keys error; everyone else keeps serving.
	deadAddr := cs.Shards[1].Addr()
	cs.Shards[1].Close()

	var deadKey, liveKey string
	for i := 0; i < keys && (deadKey == "" || liveKey == ""); i++ {
		if cc.ShardFor(key(i)) == deadAddr {
			deadKey = key(i)
		} else {
			liveKey = key(i)
		}
	}

	// First ops pay the detection cost, then the breaker opens and the
	// dead shard fails fast with the typed sentinel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := cc.Get(deadKey)
		if err == nil {
			t.Fatal("get from a closed shard succeeded")
		}
		var se *precursor.ShardError
		if !errors.As(err, &se) {
			t.Fatalf("dead-shard error not a ShardError: %v", err)
		}
		if se.Shard != deadAddr {
			t.Fatalf("error attributed to %s, want %s", se.Shard, deadAddr)
		}
		if errors.Is(err, precursor.ErrShardDown) {
			break // breaker open
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened for the dead shard")
		}
	}
	start := time.Now()
	if _, err := cc.Get(deadKey); !errors.Is(err, precursor.ErrShardDown) {
		t.Fatalf("breaker-open error = %v", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("dead-shard error took %v, want fail-fast", d)
	}
	if deg := cc.Degraded(); len(deg) != 1 || deg[0] != deadAddr {
		t.Errorf("Degraded() = %v, want [%s]", deg, deadAddr)
	}

	// Healthy shards are unaffected: reads and writes still land.
	if v, err := cc.Get(liveKey); err != nil || string(v) != "v-"+liveKey {
		t.Fatalf("healthy shard read after shard death: %q %v", v, err)
	}
	if err := cc.Put("post-failure-"+liveKey, []byte("x")); err != nil {
		if cc.ShardFor("post-failure-"+liveKey) != deadAddr {
			t.Fatalf("healthy shard write after shard death: %v", err)
		}
	}
}

// TestClusterDialFailure: a bad shard spec fails the whole dial (no
// partially-connected client) and closes what was already dialed.
func TestClusterDialFailure(t *testing.T) {
	cs, err := precursor.ServeCluster(2, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	specs := cs.Specs()
	specs[1].Addr = "127.0.0.1:1" // nothing listens there
	if _, err := precursor.DialCluster(specs, precursor.ClusterConfig{}); err == nil {
		t.Fatal("DialCluster succeeded with an unreachable shard")
	}
	if _, err := precursor.DialCluster(nil, precursor.ClusterConfig{}); !errors.Is(err, precursor.ErrNoShards) {
		t.Errorf("DialCluster(nil) = %v", err)
	}
}

// TestClusterAttestsEachShard: a shard whose measurement does not match
// its spec is rejected during DialCluster — per-shard attestation, not
// cluster-wide trust.
func TestClusterAttestsEachShard(t *testing.T) {
	cs, err := precursor.ServeCluster(2, precursor.ServerConfig{
		Workers: 1, PollInterval: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	specs := cs.Specs()
	specs[1].Measurement[0] ^= 0xFF // wrong enclave build for shard 1
	if _, err := precursor.DialCluster(specs, precursor.ClusterConfig{}); err == nil {
		t.Fatal("DialCluster accepted a shard with a wrong measurement")
	}
}
