package precursor_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"precursor"
)

// TestTracerOverheadGate is the CI overhead gate for the observability
// layer: two identical TCP-fabric deployments — one with tracing fully
// enabled (server + client tracers), one with nil tracers — serve the
// same workload with their operations interleaved one-for-one, so
// scheduler and GC noise lands on both streams alike. The gate fails if
// the traced stream's median per-op latency is more than 5% above the
// untraced one's. The TCP fabric is the deployment path production
// tracing rides on (cmd/precursor-server -trace), so its op latency is
// the denominator the 5% budget is meant against.
//
// Timing-sensitive by design, so it only runs when opted in:
//
//	PRECURSOR_OVERHEAD_GATE=1 go test . -run TestTracerOverheadGate -v
func TestTracerOverheadGate(t *testing.T) {
	if os.Getenv("PRECURSOR_OVERHEAD_GATE") == "" {
		t.Skip("set PRECURSOR_OVERHEAD_GATE=1 to run the tracing overhead gate")
	}
	const maxOver = 0.05
	untraced := newOverheadPair(t, false)
	traced := newOverheadPair(t, true)

	value := make([]byte, 128)
	for i := range value {
		value[i] = byte(i)
	}
	// Seed the whole measured keyspace so every Get hits, then warm up
	// allocators, pools and the enclave tables outside the measurement.
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("k%04d", i)
		if err := untraced.client.Put(key, value); err != nil {
			t.Fatal(err)
		}
		if err := traced.client.Put(key, value); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%04d", i%64)
		untraced.op(t, i, key, value)
		traced.op(t, i, key, value)
	}
	// One re-measurement on failure: the comparison is between two live
	// deployments on a shared host, so a single burst of scheduler or GC
	// noise can push one sample set past the budget. A real regression
	// fails both measurements.
	over, b, tr := measureOverhead(t, untraced, traced, value)
	if over > maxOver {
		t.Logf("first measurement over budget (%+.2f%%); re-measuring once", over*100)
		over, b, tr = measureOverhead(t, untraced, traced, value)
	}
	t.Logf("untraced median %v, traced median %v, overhead %+.2f%%", b, tr, over*100)
	if path := os.Getenv("PRECURSOR_TRACE_JSON"); path != "" {
		// CI datapoint (BENCH_trace.json): the measured cost of full
		// tracing — context propagation, extended reply AD, span
		// recording — against the untraced baseline.
		point := struct {
			Bench            string  `json:"bench"`
			UntracedMedianNs int64   `json:"untraced_median_ns"`
			TracedMedianNs   int64   `json:"traced_median_ns"`
			Overhead         float64 `json:"overhead_frac"`
			MaxOverhead      float64 `json:"max_overhead_frac"`
		}{"trace_overhead", b.Nanoseconds(), tr.Nanoseconds(), over, maxOver}
		data, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	if over > maxOver {
		t.Fatalf("tracing overhead %+.2f%% exceeds the %.0f%% budget (untraced %v, traced %v)",
			over*100, maxOver*100, b, tr)
	}
}

// measureOverhead interleaves ops pairwise across the two deployments and
// returns the traced stream's relative median-latency overhead.
func measureOverhead(t *testing.T, untraced, traced *overheadPair, value []byte) (over float64, b, tr time.Duration) {
	const ops = 4000
	baseLat := make([]time.Duration, 0, ops)
	traceLat := make([]time.Duration, 0, ops)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%04d", i%64)
		// Alternate which deployment goes first within the pair so a
		// periodic disturbance cannot consistently favor one stream.
		if i%2 == 0 {
			baseLat = append(baseLat, untraced.op(t, i, key, value))
			traceLat = append(traceLat, traced.op(t, i, key, value))
		} else {
			traceLat = append(traceLat, traced.op(t, i, key, value))
			baseLat = append(baseLat, untraced.op(t, i, key, value))
		}
	}
	b, tr = median(baseLat), median(traceLat)
	return float64(tr)/float64(b) - 1, b, tr
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// overheadPair is one in-process server + client deployment.
type overheadPair struct {
	client *precursor.Client
}

// op runs one put or get (alternating) and returns its latency.
func (p *overheadPair) op(t *testing.T, i int, key string, value []byte) time.Duration {
	t.Helper()
	start := time.Now()
	if i%2 == 0 {
		if err := p.client.Put(key, value); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := p.client.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

// newOverheadPair builds a fresh TCP-fabric deployment (Serve + Dial on
// a loopback ephemeral port), fully traced or fully untraced.
func newOverheadPair(t *testing.T, withTracing bool) *overheadPair {
	t.Helper()
	platform, err := precursor.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	cfg := precursor.ServerConfig{
		Platform: platform, Workers: 1, PollInterval: time.Microsecond,
	}
	var ctracer *precursor.Tracer
	if withTracing {
		cfg.Tracer = precursor.NewTracer(precursor.TracerConfig{
			Side: precursor.SideServer, Workers: 1,
		})
		ctracer = precursor.NewTracer(precursor.TracerConfig{
			Side: precursor.SideClient, Workers: 1,
		})
	}
	svc, err := precursor.Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	client, err := precursor.Dial(svc.Addr(), precursor.DialConfig{
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: svc.Server.Measurement(),
		Tracer:      ctracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return &overheadPair{client: client}
}
