package precursor

import (
	"errors"
	"fmt"
	"sync"
)

// Pool multiplexes operations over several Precursor client connections.
//
// The protocol allows one outstanding operation per connection (each
// client owns an oid sequence and its rings, §3.7), so applications that
// want concurrency open several connections — exactly how the paper's
// evaluation runs 50 clients. Pool packages that pattern: Get/Put/Delete
// borrow an idle connection and return it afterwards, so the pool is safe
// for concurrent use by many goroutines.
type Pool struct {
	mu      sync.Mutex
	free    []*Client
	all     []*Client
	waiters []chan *Client
	closed  bool
}

// ErrPoolClosed is returned by operations on a closed pool.
var ErrPoolClosed = errors.New("precursor: pool closed")

// NewPool dials size connections with Dial and pools them.
func NewPool(addr string, cfg DialConfig, size int) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	p := &Pool{}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, cfg)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pool connection %d: %w", i, err)
		}
		p.free = append(p.free, c)
		p.all = append(p.all, c)
	}
	return p, nil
}

// NewPoolFromClients pools already-connected clients (e.g. over the
// in-process fabric). The pool takes ownership: Close closes them.
func NewPoolFromClients(clients []*Client) (*Pool, error) {
	if len(clients) == 0 {
		return nil, errors.New("precursor: pool needs at least one client")
	}
	p := &Pool{}
	p.free = append(p.free, clients...)
	p.all = append(p.all, clients...)
	return p, nil
}

// acquire borrows a connection, waiting if all are busy.
func (p *Pool) acquire() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	ch := make(chan *Client, 1)
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	c, ok := <-ch
	if !ok || c == nil {
		return nil, ErrPoolClosed
	}
	return c, nil
}

// release returns a connection, handing it to a waiter if any. If the
// pool was closed while the connection was borrowed, the connection is
// closed here instead of being re-pooled.
func (p *Pool) release(c *Client) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		ch <- c
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// Put stores value under key using any idle connection.
func (p *Pool) Put(key string, value []byte) error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	defer p.release(c)
	return c.Put(key, value)
}

// Get fetches and verifies the value for key.
func (p *Pool) Get(key string) ([]byte, error) {
	c, err := p.acquire()
	if err != nil {
		return nil, err
	}
	defer p.release(c)
	return c.Get(key)
}

// Delete removes key.
func (p *Pool) Delete(key string) error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	defer p.release(c)
	return c.Delete(key)
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.all)
}

// Close closes every pooled connection. In-flight operations finish
// first: only idle connections are closed here, and a borrowed
// connection is closed when its operation releases it. Waiters are woken
// with ErrPoolClosed. Close is idempotent — extra calls return nil.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	waiters := p.waiters
	p.waiters = nil
	free := p.free
	p.free = nil
	p.mu.Unlock()

	for _, ch := range waiters {
		close(ch)
	}
	var firstErr error
	for _, c := range free {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
