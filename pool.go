package precursor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"precursor/internal/overload"
)

// Pool multiplexes operations over several Precursor client connections.
//
// The protocol allows one outstanding operation per connection (each
// client owns an oid sequence and its rings, §3.7), so applications that
// want concurrency open several connections — exactly how the paper's
// evaluation runs 50 clients. Pool packages that pattern: Get/Put/Delete
// borrow an idle connection and return it afterwards, so the pool is safe
// for concurrent use by many goroutines.
//
// A pool built with NewPool self-heals: when an operation fails with
// ErrClosed the dead connection is discarded and a background goroutine
// redials (with backoff) to restore capacity. While capacity is degraded,
// acquire waits are bounded — an operation that cannot borrow a
// connection within the pool's timeout fails with an error wrapping
// ErrTimeout rather than blocking forever, so a cluster breaker sitting
// above the pool can trip instead of hanging.
type Pool struct {
	mu      sync.Mutex
	free    []*Client
	all     []*Client
	waiters []chan *Client
	closed  bool

	// redial re-establishes one connection after a dead one is discarded
	// (nil for NewPoolFromClients: the pool cannot re-dial in-process
	// fabric clients, so dead connections are simply re-pooled as before).
	redial func() (*Client, error)
	// waitTimeout bounds acquire when every connection is busy or dead.
	waitTimeout time.Duration

	// Redial pacing is pool-wide, not per-loop: when a server dies it
	// takes every pooled connection with it, spawning one redial loop per
	// corpse — without shared state those loops dial in lockstep and
	// hammer the server the moment it tries to come back. claimRedial
	// serializes attempts and grows one shared, jittered backoff.
	redialMu       sync.Mutex
	redialFailures int       // consecutive failed attempts, pool-wide
	nextRedial     time.Time // earliest next permitted attempt

	// budget is the pool-wide retry budget: every RETRY_LATER retry
	// spends a token, every success deposits a fraction of one, so the
	// pool's retry amplification is bounded (≤ ~1.1×) no matter how
	// hard the shard sheds. Shared across all the pool's connections.
	budget *overload.RetryBudget
}

// ErrPoolClosed is returned by operations on a closed pool.
var ErrPoolClosed = errors.New("precursor: pool closed")

// defaultAcquireWait bounds acquire when DialConfig.Timeout is unset.
const defaultAcquireWait = 5 * time.Second

// NewPool dials size connections with Dial and pools them.
func NewPool(addr string, cfg DialConfig, size int) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	wait := cfg.Timeout
	if wait <= 0 {
		wait = defaultAcquireWait
	}
	p := &Pool{
		redial:      func() (*Client, error) { return Dial(addr, cfg) },
		waitTimeout: wait,
		budget:      overload.NewRetryBudget(overload.DefaultBudgetMax, overload.DefaultBudgetRatio),
	}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, cfg)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pool connection %d: %w", i, err)
		}
		p.free = append(p.free, c)
		p.all = append(p.all, c)
	}
	return p, nil
}

// NewPoolFromClients pools already-connected clients (e.g. over the
// in-process fabric). The pool takes ownership: Close closes them.
func NewPoolFromClients(clients []*Client) (*Pool, error) {
	if len(clients) == 0 {
		return nil, errors.New("precursor: pool needs at least one client")
	}
	p := &Pool{
		waitTimeout: defaultAcquireWait,
		budget:      overload.NewRetryBudget(overload.DefaultBudgetMax, overload.DefaultBudgetRatio),
	}
	p.free = append(p.free, clients...)
	p.all = append(p.all, clients...)
	return p, nil
}

// acquire borrows a connection, waiting (bounded) if all are busy.
func (p *Pool) acquire() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if p.redial != nil && len(p.all) == 0 {
		// Every connection is dead and awaiting redial: waiting out the
		// acquire timeout would stall the caller on a server that is
		// known-unreachable right now. Fail fast with ErrClosed so a
		// breaker above the pool trips immediately; the background
		// redial loops restore capacity when the server returns.
		p.mu.Unlock()
		return nil, fmt.Errorf("precursor: pool has no live connections: %w", ErrClosed)
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	ch := make(chan *Client, 1)
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()

	timer := time.NewTimer(p.waitTimeout)
	defer timer.Stop()
	select {
	case c, ok := <-ch:
		if !ok || c == nil {
			return nil, ErrPoolClosed
		}
		return c, nil
	case <-timer.C:
	}

	// Timed out: retract the waiter entry. A release may hand us a
	// connection concurrently — if it already did (our entry is gone),
	// take the connection from the channel and put it back in rotation.
	p.mu.Lock()
	for i, w := range p.waiters {
		if w == ch {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			p.mu.Unlock()
			return nil, fmt.Errorf("precursor: pool acquire: %w", ErrTimeout)
		}
	}
	p.mu.Unlock()
	if c, ok := <-ch; ok && c != nil {
		p.release(c)
	}
	return nil, fmt.Errorf("precursor: pool acquire: %w", ErrTimeout)
}

// release returns a connection, handing it to a waiter if any. If the
// pool was closed while the connection was borrowed, the connection is
// closed here instead of being re-pooled.
func (p *Pool) release(c *Client) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		ch <- c
		return
	}
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// finish returns a connection after an operation: a connection whose
// operation failed with ErrClosed is dead protocol-wise (its session and
// oid sequence are gone), so instead of re-pooling it we discard it and
// redial a replacement in the background.
func (p *Pool) finish(c *Client, err error) {
	if err == nil || !errors.Is(err, ErrClosed) || p.redial == nil {
		p.release(c)
		return
	}
	_ = c.Close()
	p.mu.Lock()
	for i, pc := range p.all {
		if pc == c {
			p.all = append(p.all[:i], p.all[i+1:]...)
			break
		}
	}
	stopped := p.closed
	p.mu.Unlock()
	if !stopped {
		go p.redialLoop()
	}
}

// Redial backoff bounds: attempts start redialBase apart and double per
// consecutive pool-wide failure up to redialMax.
const (
	redialBase     = 50 * time.Millisecond
	redialMax      = 2 * time.Second
	redialShiftCap = 6 // 50ms << 6 already exceeds redialMax
)

// claimRedial grants or defers one redial attempt. A granted claim
// (ok=true) immediately pushes the next permitted attempt out by the
// current backoff, so concurrent redial loops take turns; a deferred
// claim returns how long to wait before asking again. The backoff is
// jittered ±50% to decorrelate pools that lost their server at the same
// moment (every client of a crashed shard otherwise retries in phase).
func (p *Pool) claimRedial() (wait time.Duration, ok bool) {
	p.redialMu.Lock()
	defer p.redialMu.Unlock()
	now := time.Now()
	if now.Before(p.nextRedial) {
		return p.nextRedial.Sub(now), false
	}
	d := redialBase << uint(min(p.redialFailures, redialShiftCap))
	if d > redialMax {
		d = redialMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	p.nextRedial = now.Add(d)
	return 0, true
}

// redialLoop restores one discarded connection, pacing attempts through
// the pool's shared backoff, until it succeeds or the pool closes.
func (p *Pool) redialLoop() {
	for {
		p.mu.Lock()
		stopped := p.closed
		p.mu.Unlock()
		if stopped {
			return
		}
		wait, ok := p.claimRedial()
		if !ok {
			time.Sleep(wait)
			continue
		}
		c, err := p.redial()
		if err != nil {
			p.redialMu.Lock()
			p.redialFailures++
			p.redialMu.Unlock()
			continue
		}
		p.redialMu.Lock()
		p.redialFailures = 0
		p.redialMu.Unlock()
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = c.Close()
			return
		}
		p.all = append(p.all, c)
		p.mu.Unlock()
		p.release(c)
		return
	}
}

// maxShedRetries bounds how many times one pool operation re-attempts
// after RETRY_LATER, even when the budget would fund more.
const maxShedRetries = 3

// withShedRetry runs op (which must acquire/finish its own connection
// per attempt), retrying admission-control sheds under the pool's
// shared retry budget. A shed is safe to retry for reads AND writes —
// the sealed RETRY_LATER guarantees the server did not apply the op —
// but each retry spends a budget token; when the bucket is empty the
// shed error is returned as-is, which is what bounds fleet-wide retry
// amplification. Between attempts the server's backoff hint (or a
// small default) is honored with jitter.
func (p *Pool) withShedRetry(op func() error) error {
	backoff := 2 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			p.budget.OnSuccess()
			return nil
		}
		if !errors.Is(err, ErrRetryLater) || attempt >= maxShedRetries || !p.budget.TrySpend() {
			return err
		}
		var rl *RetryLaterError
		if errors.As(err, &rl) && rl.Hint > backoff {
			backoff = rl.Hint
		}
		time.Sleep(overload.Jitter(backoff))
		backoff *= 2
	}
}

// Budget returns the pool's shared retry budget, for metrics exporters
// and layers (the cluster client) that coordinate their own retries or
// hedges with the pool's.
func (p *Pool) Budget() *overload.RetryBudget { return p.budget }

// Put stores value under key using any idle connection. A RETRY_LATER
// shed is retried under the pool's retry budget (the server guarantees
// a shed write was not applied, so the retry cannot double-apply).
func (p *Pool) Put(key string, value []byte) error {
	return p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		err = c.Put(key, value)
		p.finish(c, err)
		return err
	})
}

// Get fetches and verifies the value for key. RETRY_LATER sheds are
// retried under the pool's retry budget.
func (p *Pool) Get(key string) ([]byte, error) {
	var v []byte
	err := p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		v, err = c.Get(key)
		p.finish(c, err)
		return err
	})
	return v, err
}

// Delete removes key. RETRY_LATER sheds are retried under the pool's
// retry budget.
func (p *Pool) Delete(key string) error {
	return p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		err = c.Delete(key)
		p.finish(c, err)
		return err
	})
}

// PutTraced is Put continuing a caller-supplied trace: whichever
// connection the op borrows adopts ref's trace and carries it to the
// server inside the sealed control data (see Client.PutTraced). Shed
// retries reuse the same ref, so every attempt lands in one trace.
func (p *Pool) PutTraced(ref SpanRef, key string, value []byte) error {
	return p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		err = c.PutTraced(ref, key, value)
		p.finish(c, err)
		return err
	})
}

// GetTraced is Get continuing a caller-supplied trace (see PutTraced).
func (p *Pool) GetTraced(ref SpanRef, key string) ([]byte, error) {
	var v []byte
	err := p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		v, err = c.GetTraced(ref, key)
		p.finish(c, err)
		return err
	})
	return v, err
}

// DeleteTraced is Delete continuing a caller-supplied trace (see
// PutTraced).
func (p *Pool) DeleteTraced(ref SpanRef, key string) error {
	return p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		err = c.DeleteTraced(ref, key)
		p.finish(c, err)
		return err
	})
}

// Batch executes ops as one multi-op frame — one seal, one ring
// doorbell — over a single borrowed connection, returning per-op
// results in request order. The error is batch-level; per-op outcomes
// (including ErrUnconfirmed attribution for writes whose fate is
// unknown) are in the results. See Client.Batch.
// Batches shed by the admission gate fail as a unit with a batch-level
// RetryLaterError — nothing was applied — so the whole frame is
// retried under the budget like a single op.
func (p *Pool) Batch(ops []BatchOp) ([]BatchResult, error) {
	var results []BatchResult
	err := p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		results, err = c.Batch(ops)
		p.finish(c, err)
		return err
	})
	return results, err
}

// BatchDeadline is Batch under a caller-supplied absolute deadline
// (zero = none): the parent's remaining budget bounds the frame's
// deadline, and a spent deadline fails fast with ErrTimeout before
// anything is sent. Shed retries stop once the deadline would be
// overrun.
func (p *Pool) BatchDeadline(ops []BatchOp, deadline time.Time) ([]BatchResult, error) {
	var results []BatchResult
	err := p.withShedRetry(func() error {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return ErrTimeout
		}
		c, err := p.acquire()
		if err != nil {
			return err
		}
		results, err = c.BatchDeadline(ops, deadline)
		p.finish(c, err)
		return err
	})
	return results, err
}

// BatchDeadlineTraced is BatchDeadline continuing a caller-supplied
// trace (zero deadline = none): the whole frame — and the server-side
// batch span applying it — stitches under ref's trace. See
// Client.BatchDeadlineTraced.
func (p *Pool) BatchDeadlineTraced(ref SpanRef, ops []BatchOp, deadline time.Time) ([]BatchResult, error) {
	var results []BatchResult
	err := p.withShedRetry(func() error {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return ErrTimeout
		}
		c, err := p.acquire()
		if err != nil {
			return err
		}
		results, err = c.BatchDeadlineTraced(ref, ops, deadline)
		p.finish(c, err)
		return err
	})
	return results, err
}

// PutBatch stores values[i] under keys[i] as one batch frame on one
// borrowed connection.
func (p *Pool) PutBatch(keys []string, values [][]byte) ([]BatchResult, error) {
	var results []BatchResult
	err := p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		results, err = c.PutBatch(keys, values)
		p.finish(c, err)
		return err
	})
	return results, err
}

// GetBatch fetches keys as one batch frame on one borrowed connection.
func (p *Pool) GetBatch(keys []string) ([]BatchResult, error) {
	var results []BatchResult
	err := p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		results, err = c.GetBatch(keys)
		p.finish(c, err)
		return err
	})
	return results, err
}

// DeleteBatch removes keys as one batch frame on one borrowed
// connection.
func (p *Pool) DeleteBatch(keys []string) ([]BatchResult, error) {
	var results []BatchResult
	err := p.withShedRetry(func() error {
		c, err := p.acquire()
		if err != nil {
			return err
		}
		results, err = c.DeleteBatch(keys)
		p.finish(c, err)
		return err
	})
	return results, err
}

// Size returns the number of pooled connections (live ones — dead
// connections awaiting redial are not counted).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.all)
}

// Close closes every pooled connection. In-flight operations finish
// first: only idle connections are closed here, and a borrowed
// connection is closed when its operation releases it. Waiters are woken
// with ErrPoolClosed. Close is idempotent — extra calls return nil.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	waiters := p.waiters
	p.waiters = nil
	free := p.free
	p.free = nil
	p.mu.Unlock()

	for _, ch := range waiters {
		close(ch)
	}
	var firstErr error
	for _, c := range free {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
