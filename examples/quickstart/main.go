// Quickstart: start a Precursor server and client on the in-process RDMA
// fabric, attest the enclave, and run a few operations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"precursor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. An SGX-capable platform: owns the attestation key clients use to
	//    verify quotes.
	platform, err := precursor.NewPlatform()
	if err != nil {
		return err
	}

	// 2. An RDMA fabric with one device per machine.
	fabric := precursor.NewFabric()
	serverDev, err := fabric.NewDevice("server")
	if err != nil {
		return err
	}
	clientDev, err := fabric.NewDevice("client")
	if err != nil {
		return err
	}

	// 3. The Precursor server: creates its enclave and starts the trusted
	//    polling threads.
	server, err := precursor.NewServer(serverDev, precursor.ServerConfig{
		Platform: platform,
		Workers:  4,
	})
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Printf("server enclave measurement: %x\n", server.Measurement())

	// 4. Connect a client: a reliable-connected queue pair, then remote
	//    attestation + ring-buffer bootstrap. The client refuses to
	//    proceed if the enclave measurement or platform key don't match.
	clientQP, serverQP := fabric.ConnectRC(clientDev, serverDev)
	go func() {
		if _, err := server.HandleConnection(serverQP); err != nil {
			log.Printf("handle connection: %v", err)
		}
	}()
	client, err := precursor.Connect(precursor.ClientConfig{
		Conn:        clientQP,
		Device:      clientDev,
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: server.Measurement(),
	})
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("attested and connected as client %d\n", client.ID())

	// 5. Operations. Every put encrypts the value on the client under a
	//    fresh one-time key; the server enclave never sees the plaintext
	//    or performs payload cryptography.
	start := time.Now()
	if err := client.Put("user:1001", []byte(`{"name":"ines","role":"author"}`)); err != nil {
		return err
	}
	fmt.Printf("put user:1001        (%v)\n", time.Since(start).Round(time.Microsecond))

	start = time.Now()
	v, err := client.Get("user:1001")
	if err != nil {
		return err
	}
	fmt.Printf("get user:1001 -> %s  (%v)\n", v, time.Since(start).Round(time.Microsecond))

	if err := client.Put("user:1001", []byte(`{"name":"ines","role":"admin"}`)); err != nil {
		return err
	}
	v, err = client.Get("user:1001")
	if err != nil {
		return err
	}
	fmt.Printf("updated        -> %s\n", v)

	if err := client.Delete("user:1001"); err != nil {
		return err
	}
	if _, err := client.Get("user:1001"); err != nil {
		fmt.Printf("after delete   -> %v (authenticated not-found)\n", err)
	}

	// 6. Server-side view: note the enclave's tiny working set and the
	//    absence of per-request transitions.
	st := server.Stats()
	fmt.Printf("\nserver stats: puts=%d gets=%d deletes=%d entries=%d\n",
		st.Puts, st.Gets, st.Deletes, st.Entries)
	fmt.Printf("enclave: %d ecalls total (none on the hot path), %.2f MiB EPC working set\n",
		st.Enclave.Ecalls, st.Enclave.WorkingSetMiB())
	return nil
}
