// Multitenant: per-key one-time keys, owner-only access control, client
// revocation, and tamper evidence — the security properties of §3.3/§3.9.
//
//	go run ./examples/multitenant
package main

import (
	"errors"
	"fmt"
	"log"

	"precursor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	platform, err := precursor.NewPlatform()
	if err != nil {
		return err
	}
	fabric := precursor.NewFabric()
	serverDev, err := fabric.NewDevice("server")
	if err != nil {
		return err
	}
	server, err := precursor.NewServer(serverDev, precursor.ServerConfig{
		Platform: platform,
		Workers:  4,
		// Hardened mode (§3.9): payload MACs live inside the enclave, so
		// even a formerly-authorized client with full access to untrusted
		// memory cannot substitute values it once knew.
		HardenedMACs: true,
	})
	if err != nil {
		return err
	}
	defer server.Close()
	// Owner-only policy: the "traditional access control schemes inside
	// the server-side TEE" of §3.3.
	server.SetOwnerOnly(true)

	connect := func(name string) (*precursor.Client, error) {
		dev, err := fabric.NewDevice(name)
		if err != nil {
			return nil, err
		}
		cq, sq := fabric.ConnectRC(dev, serverDev)
		go func() { _, _ = server.HandleConnection(sq) }()
		return precursor.Connect(precursor.ClientConfig{
			Conn: cq, Device: dev,
			PlatformKey: platform.AttestationPublicKey(),
			Measurement: server.Measurement(),
		})
	}

	alice, err := connect("alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := connect("bob")
	if err != nil {
		return err
	}
	defer bob.Close()
	fmt.Printf("tenants connected: alice=client%d bob=client%d\n", alice.ID(), bob.ID())

	// Each tenant's data is encrypted under its own per-put one-time keys.
	if err := alice.Put("alice:balance", []byte("1,000,000")); err != nil {
		return err
	}
	if err := bob.Put("bob:balance", []byte("42")); err != nil {
		return err
	}

	// Isolation: bob cannot read or delete alice's key — the enclave
	// answers with an authenticated not-found rather than leaking
	// existence.
	if _, err := bob.Get("alice:balance"); errors.Is(err, precursor.ErrNotFound) {
		fmt.Println("bob reading alice:balance -> authenticated NOT_FOUND (isolated)")
	} else {
		return fmt.Errorf("isolation failed: %v", err)
	}
	if v, err := alice.Get("alice:balance"); err == nil {
		fmt.Printf("alice reading her balance -> %s\n", v)
	} else {
		return err
	}

	// Revocation (§3.9): the server transitions bob's queue pair to the
	// error state. No re-encryption of stored data is needed because each
	// value already has its own one-time key.
	fmt.Println("\nrevoking bob ...")
	if !server.RevokeClient(bob.ID()) {
		return errors.New("revocation failed")
	}
	if err := bob.Put("bob:balance", []byte("999999")); err != nil {
		fmt.Printf("bob writing after revocation -> %v\n", err)
	} else {
		return errors.New("revoked client still writes")
	}
	// Alice is unaffected.
	if v, err := alice.Get("alice:balance"); err == nil {
		fmt.Printf("alice still reading fine -> %s\n", v)
	} else {
		return err
	}

	st := server.Stats()
	fmt.Printf("\nserver: clients=%d entries=%d replays=%d auth-failures=%d\n",
		st.Clients, st.Entries, st.Replays, st.AuthFailures)
	return nil
}
