// Sealrestore: persist the store to untrusted storage and recover it,
// with rollback detection — the monotonic-counter integration the paper
// points to in §2.1 ("trusted time and monotonic counters to detect state
// rollback attacks and forking").
//
//	go run ./examples/sealrestore
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"precursor"
	"precursor/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	platform, err := precursor.NewPlatform()
	if err != nil {
		return err
	}
	fabric := precursor.NewFabric()
	serverDev, err := fabric.NewDevice("server")
	if err != nil {
		return err
	}
	server, err := precursor.NewServer(serverDev, precursor.ServerConfig{
		Platform: platform, Workers: 2,
	})
	if err != nil {
		return err
	}
	defer server.Close()

	clientDev, err := fabric.NewDevice("client")
	if err != nil {
		return err
	}
	cq, sq := fabric.ConnectRC(clientDev, serverDev)
	go func() { _, _ = server.HandleConnection(sq) }()
	client, err := precursor.Connect(precursor.ClientConfig{
		Conn: cq, Device: clientDev,
		PlatformKey: platform.AttestationPublicKey(),
		Measurement: server.Measurement(),
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// Fill the store.
	for i := 0; i < 100; i++ {
		if err := client.Put(fmt.Sprintf("doc-%02d", i), []byte(fmt.Sprintf("content-%02d", i))); err != nil {
			return err
		}
	}
	fmt.Printf("stored 100 entries; trusted counter = %d\n", server.RollbackCounter())

	// Seal a snapshot: encrypted and authenticated under the enclave's
	// sealing key, stamped with the trusted monotonic counter. The blob
	// itself can live anywhere untrusted.
	var snapshot bytes.Buffer
	if err := server.Seal(&snapshot); err != nil {
		return err
	}
	fmt.Printf("sealed snapshot: %d bytes, counter -> %d\n",
		snapshot.Len(), server.RollbackCounter())

	// Simulate data loss.
	for i := 0; i < 100; i++ {
		if err := client.Delete(fmt.Sprintf("doc-%02d", i)); err != nil {
			return err
		}
	}
	fmt.Printf("wiped the store (%d entries)\n", server.Stats().Entries)

	// Recover.
	if err := server.Restore(bytes.NewReader(snapshot.Bytes())); err != nil {
		return err
	}
	v, err := client.Get("doc-42")
	if err != nil {
		return err
	}
	fmt.Printf("restored %d entries; doc-42 = %q (client-side MAC verified)\n",
		server.Stats().Entries, v)

	// Rollback attack: the host keeps the old snapshot, lets the enclave
	// seal newer state, then feeds the stale snapshot back.
	oldSnapshot := append([]byte(nil), snapshot.Bytes()...)
	if err := client.Put("doc-42", []byte("newer content")); err != nil {
		return err
	}
	var newer bytes.Buffer
	if err := server.Seal(&newer); err != nil {
		return err
	}
	err = server.Restore(bytes.NewReader(oldSnapshot))
	if errors.Is(err, core.ErrSnapshotRollback) {
		fmt.Printf("replaying the stale snapshot -> %v (attack detected)\n", err)
	} else {
		return fmt.Errorf("rollback not detected: %v", err)
	}

	// Tampered snapshot: flip one bit anywhere in the sealed blob.
	tampered := append([]byte(nil), newer.Bytes()...)
	tampered[len(tampered)/2] ^= 1
	err = server.Restore(bytes.NewReader(tampered))
	if errors.Is(err, core.ErrSnapshotAuth) {
		fmt.Printf("tampered snapshot           -> %v\n", err)
	} else {
		return fmt.Errorf("tamper not detected: %v", err)
	}

	// The genuine latest snapshot still restores.
	if err := server.Restore(bytes.NewReader(newer.Bytes())); err != nil {
		return err
	}
	v, err = client.Get("doc-42")
	if err != nil {
		return err
	}
	fmt.Printf("latest snapshot restores     -> doc-42 = %q\n", v)
	return nil
}
