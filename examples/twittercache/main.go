// Twittercache: drives Precursor with a workload shaped like the
// production in-memory caches in Yang et al.'s Twitter analysis
// (OSDI '20), which the paper cites to justify its value-size range:
// "50% of the values are bigger than 230B and 35% of the clusters are
// write-heavy workloads" (§5.2).
//
//	go run ./examples/twittercache
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"precursor"
	"precursor/internal/ycsb"
)

// sizeBucket approximates the Twitter value-size distribution: median
// ≈230 B with a long tail.
func sizeBucket(rng *rand.Rand) int {
	switch p := rng.Float64(); {
	case p < 0.25:
		return 50 + rng.Intn(80) // small metadata entries
	case p < 0.50:
		return 130 + rng.Intn(100) // just under the median
	case p < 0.80:
		return 230 + rng.Intn(800) // the >230 B half
	case p < 0.95:
		return 1024 + rng.Intn(3072)
	default:
		return 4096 + rng.Intn(12288) // rare large objects
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	platform, err := precursor.NewPlatform()
	if err != nil {
		return err
	}
	fabric := precursor.NewFabric()
	serverDev, err := fabric.NewDevice("server")
	if err != nil {
		return err
	}
	server, err := precursor.NewServer(serverDev, precursor.ServerConfig{
		Platform: platform, Workers: 4,
	})
	if err != nil {
		return err
	}
	defer server.Close()

	connect := func(name string) (ycsb.Store, error) {
		dev, err := fabric.NewDevice(name)
		if err != nil {
			return nil, err
		}
		cq, sq := fabric.ConnectRC(dev, serverDev)
		go func() { _, _ = server.HandleConnection(sq) }()
		return precursor.Connect(precursor.ClientConfig{
			Conn: cq, Device: dev,
			PlatformKey: platform.AttestationPublicKey(),
			Measurement: server.Measurement(),
			Timeout:     30 * time.Second,
		})
	}

	// Preload a cache's worth of variably sized tweets/timelines.
	const records = 5000
	loader, err := connect("loader")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("loading %d records with Twitter-like value sizes...\n", records)
	var loadedBytes int
	for i := 0; i < records; i++ {
		size := sizeBucket(rng)
		value := make([]byte, size)
		rng.Read(value)
		if err := loader.Put(ycsb.Key(i), value); err != nil {
			return err
		}
		loadedBytes += size
	}
	fmt.Printf("loaded %.1f MiB of payload (all of it in untrusted memory)\n",
		float64(loadedBytes)/(1<<20))

	// A "write-heavy cluster" (35% of Twitter's clusters): 60% reads,
	// 40% writes, zipfian keys — hot timelines dominate.
	report, err := ycsb.Run(func(i int) (ycsb.Store, error) {
		return connect(fmt.Sprintf("cache-client-%d", i))
	}, ycsb.RunnerConfig{
		Workload:     ycsb.Workload{Name: "twitter-write-heavy", ReadRatio: 0.60},
		Records:      records,
		ValueSize:    300, // representative update size
		Dist:         ycsb.Zipfian,
		Clients:      4,
		OpsPerClient: 2000,
		Seed:         7,
		NotFoundOK:   true,
		IsNotFound:   func(err error) bool { return errors.Is(err, precursor.ErrNotFound) },
	})
	if err != nil {
		return err
	}
	fmt.Println("\n" + report.String())

	st := server.Stats()
	fmt.Printf("\nserver: entries=%d payload-pool=%.1f MiB (untrusted), enclave=%.2f MiB (EPC)\n",
		st.Entries, float64(st.PoolBytesReserved)/(1<<20), st.Enclave.WorkingSetMiB())
	fmt.Printf("the %.0f:1 untrusted:enclave memory ratio is the paper's R2 objective in action\n",
		float64(st.PoolBytesReserved)/(st.Enclave.WorkingSetMiB()*(1<<20)))
	return nil
}
