// Netdeploy: run the Precursor server and clients over a real TCP
// connection using the SoftRoCE-style fabric — the cross-process
// deployment path, all in one binary for demonstration.
//
//	go run ./examples/netdeploy
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"precursor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	platform, err := precursor.NewPlatform()
	if err != nil {
		return err
	}

	// Serve on a real TCP socket; the kernel is in the path, but the
	// verbs semantics (one-sided writes into registered rings) are
	// preserved by the fabric's NIC-agent.
	svc, err := precursor.Serve("127.0.0.1:0", precursor.ServerConfig{
		Platform: platform,
		Workers:  4,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("server listening on %s\n", svc.Addr())
	fmt.Printf("enclave measurement %x\n\n", svc.Server.Measurement())

	dial := func() (*precursor.Client, error) {
		return precursor.Dial(svc.Addr(), precursor.DialConfig{
			PlatformKey: platform.AttestationPublicKey(),
			Measurement: svc.Server.Measurement(),
			Timeout:     30 * time.Second,
		})
	}

	// Several concurrent clients hammer the store across TCP.
	const (
		clients   = 4
		opsPerCli = 400
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := dial()
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", id, err)
				return
			}
			defer client.Close()
			for i := 0; i < opsPerCli; i++ {
				key := fmt.Sprintf("c%d-key-%d", id, i%50)
				if err := client.Put(key, []byte(fmt.Sprintf("value-%d-%d", id, i))); err != nil {
					errs <- fmt.Errorf("client %d put: %w", id, err)
					return
				}
				if _, err := client.Get(key); err != nil {
					errs <- fmt.Errorf("client %d get: %w", id, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)

	totalOps := clients * opsPerCli * 2
	st := svc.Server.Stats()
	fmt.Printf("%d clients finished %d ops in %v (%.1f Kops/s over loopback TCP)\n",
		clients, totalOps, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds()/1000)
	fmt.Printf("server: puts=%d gets=%d entries=%d clients=%d\n",
		st.Puts, st.Gets, st.Entries, st.Clients)
	fmt.Printf("enclave: %.2f MiB EPC working set, %d page faults\n",
		st.Enclave.WorkingSetMiB(), st.Enclave.PageFaults)
	return nil
}
